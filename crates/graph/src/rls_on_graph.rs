//! RLS restricted to a graph: an activated ball samples a destination among
//! the *neighbours* of its current bin (instead of all bins) and moves iff
//! the neighbour's load is strictly smaller than its own bin's load
//! (the `ℓ_i ≥ ℓ_{i'} + 1` rule of the paper, unchanged).
//!
//! On the complete graph this is exactly the paper's process (up to the
//! irrelevant exclusion of self-samples), so the complete-graph topology
//! doubles as a consistency check against the `rls-sim` engine.  On sparse
//! graphs, perfect balance is still reachable whenever the graph is
//! connected, but the time degrades with the graph's bottleneck — the
//! qualitative `τ_mix` dependence that \[6\] proves for threshold protocols
//! and that experiment E16 measures for RLS.

use rls_core::Config;
use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{Rng64, RngExt};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Outcome of a graph-restricted RLS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphRlsOutcome {
    /// Simulated (continuous) time at which the run stopped.
    pub time: f64,
    /// Number of ball activations.
    pub activations: u64,
    /// Number of migrations.
    pub migrations: u64,
    /// Whether the target balance was reached.
    pub reached_goal: bool,
    /// Final discrepancy.
    pub final_discrepancy: f64,
}

/// The RLS process on a graph.
#[derive(Debug, Clone)]
pub struct GraphRls {
    graph: Graph,
    max_activations: u64,
}

impl GraphRls {
    /// RLS on the given graph with an activation budget.
    pub fn new(graph: Graph, max_activations: u64) -> Self {
        Self {
            graph,
            max_activations,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Run from `initial` (which must have one bin per vertex) until the
    /// discrepancy is at most `target` (`< 1.0` for perfect balance) or the
    /// activation budget runs out.
    pub fn run<R: Rng64 + ?Sized>(
        &self,
        initial: &Config,
        target: f64,
        rng: &mut R,
    ) -> GraphRlsOutcome {
        assert_eq!(
            initial.n(),
            self.graph.n(),
            "configuration must have one bin per graph vertex"
        );
        let m = initial.m();
        assert!(m > 0, "need at least one ball");
        let mut loads: Vec<u64> = initial.loads().to_vec();
        let mut positions: Vec<u32> = Vec::with_capacity(m as usize);
        for (bin, &l) in loads.iter().enumerate() {
            for _ in 0..l {
                positions.push(bin as u32);
            }
        }
        let goal = |loads: &[u64]| {
            let cfg = Config::from_loads(loads.to_vec()).expect("non-empty");
            if target < 1.0 {
                cfg.is_perfectly_balanced()
            } else {
                cfg.is_x_balanced(target)
            }
        };
        let waiting = Exponential::new(m as f64).expect("m ≥ 1");
        let mut time = 0.0;
        let mut activations = 0u64;
        let mut migrations = 0u64;
        let mut reached = goal(&loads);
        while !reached && activations < self.max_activations {
            time += waiting.sample(rng);
            activations += 1;
            let ball = rng.next_index(m as usize);
            let source = positions[ball] as usize;
            let Some(dest) = self.graph.sample_neighbor(source, rng) else {
                continue;
            };
            if loads[source] > loads[dest] {
                loads[source] -= 1;
                loads[dest] += 1;
                positions[ball] = dest as u32;
                migrations += 1;
                reached = goal(&loads);
            }
        }
        let final_discrepancy = Config::from_loads(loads).expect("non-empty").discrepancy();
        GraphRlsOutcome {
            time,
            activations,
            migrations,
            reached_goal: reached,
            final_discrepancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rls_rng::rng_from_seed;

    fn all_in_one(n: usize, m: u64) -> Config {
        Config::all_in_one_bin(n, m).unwrap()
    }

    #[test]
    fn complete_graph_behaves_like_the_paper_process() {
        let g = Topology::Complete.build(8, &mut rng_from_seed(1)).unwrap();
        let proc = GraphRls::new(g, 10_000_000);
        let out = proc.run(&all_in_one(8, 64), 0.0, &mut rng_from_seed(2));
        assert!(out.reached_goal);
        assert!(out.final_discrepancy < 1.0);
        assert!(out.migrations >= 56);
    }

    #[test]
    fn cycle_reaches_perfect_balance_but_more_slowly() {
        let n = 16;
        let m = 16 * 8;
        let complete = GraphRls::new(
            Topology::Complete.build(n, &mut rng_from_seed(3)).unwrap(),
            50_000_000,
        );
        let cycle = GraphRls::new(
            Topology::Cycle.build(n, &mut rng_from_seed(3)).unwrap(),
            50_000_000,
        );
        let out_complete = complete.run(&all_in_one(n, m), 0.0, &mut rng_from_seed(4));
        let out_cycle = cycle.run(&all_in_one(n, m), 0.0, &mut rng_from_seed(5));
        assert!(out_complete.reached_goal);
        assert!(out_cycle.reached_goal);
        assert!(
            out_cycle.time > out_complete.time,
            "cycle ({}) should be slower than complete ({})",
            out_cycle.time,
            out_complete.time
        );
    }

    #[test]
    fn star_balances_through_the_hub() {
        let g = Topology::Star.build(9, &mut rng_from_seed(6)).unwrap();
        let proc = GraphRls::new(g, 10_000_000);
        let out = proc.run(&all_in_one(9, 45), 0.0, &mut rng_from_seed(7));
        assert!(out.reached_goal);
    }

    #[test]
    fn activation_budget_is_respected() {
        let g = Topology::Cycle.build(32, &mut rng_from_seed(8)).unwrap();
        let proc = GraphRls::new(g, 100);
        let out = proc.run(&all_in_one(32, 512), 0.0, &mut rng_from_seed(9));
        assert!(!out.reached_goal);
        assert_eq!(out.activations, 100);
    }

    #[test]
    #[should_panic(expected = "one bin per graph vertex")]
    fn mismatched_sizes_panic() {
        let g = Topology::Cycle.build(8, &mut rng_from_seed(10)).unwrap();
        let proc = GraphRls::new(g, 100);
        let _ = proc.run(&all_in_one(4, 16), 0.0, &mut rng_from_seed(11));
    }

    #[test]
    fn isolated_vertices_never_receive_balls() {
        // A path plus one isolated vertex: balls can never reach vertex 3,
        // so perfect balance is unreachable, but the process must not panic
        // and must respect its budget.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let proc = GraphRls::new(g, 50_000);
        let out = proc.run(&all_in_one(4, 12), 0.0, &mut rng_from_seed(12));
        assert!(!out.reached_goal);
        assert!(out.final_discrepancy >= 1.0);
    }
}

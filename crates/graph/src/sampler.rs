//! Neighbor-restricted destination sampling for the online engines.
//!
//! The paper's process samples a ring destination uniformly over *all*
//! bins — the complete graph.  The graph-restricted variant samples
//! uniformly over the ringing bin's *neighbours*.  [`DestSampler`] folds
//! both into one value the engines can hold:
//!
//! * [`Complete`](DestSampler::Complete) keeps the O(1) uniform draw (no
//!   adjacency is materialized — an `n`-vertex complete graph would cost
//!   `Θ(n²)` memory for nothing);
//! * [`Sparse`](DestSampler::Sparse) holds a CSR [`Graph`] built **once at
//!   boot** from a [`Topology`] and a build seed, so neighbour sampling is
//!   one index computation and random topologies (random-regular,
//!   Erdős–Rényi) are reproducible from `(topology, seed)` alone — which
//!   is exactly what live snapshots persist.

use rls_rng::{rng_from_seed, Rng64, RngExt};

use crate::graph::{Graph, GraphError};
use crate::topology::Topology;

/// Where a ringing ball may sample its destination.
#[derive(Debug, Clone, PartialEq)]
pub enum DestSampler {
    /// Uniform over all `n` bins (the paper's model; the draw may land on
    /// the source itself, which never moves — keeping the exact law of the
    /// complete-graph process).
    Complete {
        /// Number of bins.
        n: usize,
    },
    /// Uniform over the source's neighbours in a sparse topology.
    Sparse {
        /// The adjacency, in CSR form.
        graph: Graph,
    },
}

impl DestSampler {
    /// Build the sampler for `topology` on `n` bins.  Random topologies
    /// are drawn from `graph_seed`; the same `(topology, n, graph_seed)`
    /// always yields the same adjacency.
    pub fn build(topology: Topology, n: usize, graph_seed: u64) -> Result<Self, GraphError> {
        match topology {
            Topology::Complete => {
                if n == 0 {
                    return Err(GraphError::Empty);
                }
                Ok(DestSampler::Complete { n })
            }
            other => Ok(DestSampler::Sparse {
                graph: other.build(n, &mut rng_from_seed(graph_seed))?,
            }),
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        match self {
            DestSampler::Complete { n } => *n,
            DestSampler::Sparse { graph } => graph.n(),
        }
    }

    /// Whether this is the complete-graph fast path.
    pub fn is_complete(&self) -> bool {
        matches!(self, DestSampler::Complete { .. })
    }

    /// Sample one candidate destination for a ring in `source`.
    ///
    /// Returns `None` only for an isolated vertex of a sparse topology (a
    /// ball there can never migrate).
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, source: usize, rng: &mut R) -> Option<usize> {
        match self {
            DestSampler::Complete { n } => Some(rng.next_index(*n)),
            DestSampler::Sparse { graph } => graph.sample_neighbor(source, rng),
        }
    }

    /// Whether an explicitly pinned `source → dest` ring is admissible:
    /// any in-range pair on the complete graph (including the self-loop
    /// no-op, exactly like a sampled draw), adjacency on sparse ones.
    pub fn permits_edge(&self, source: usize, dest: usize) -> bool {
        let n = self.n();
        if source >= n || dest >= n {
            return false;
        }
        match self {
            DestSampler::Complete { .. } => true,
            DestSampler::Sparse { graph } => source == dest || graph.has_edge(source, dest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sampler_draws_every_bin() {
        let sampler = DestSampler::build(Topology::Complete, 8, 1).unwrap();
        assert!(sampler.is_complete());
        assert_eq!(sampler.n(), 8);
        let mut rng = rng_from_seed(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[sampler.sample(3, &mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw covers all bins");
        assert!(sampler.permits_edge(0, 0), "self-loop no-op is admissible");
        assert!(sampler.permits_edge(0, 7));
        assert!(!sampler.permits_edge(0, 8));
        assert!(DestSampler::build(Topology::Complete, 0, 1).is_err());
    }

    #[test]
    fn sparse_sampler_stays_in_the_neighborhood() {
        let sampler = DestSampler::build(Topology::Cycle, 10, 2).unwrap();
        assert!(!sampler.is_complete());
        let mut rng = rng_from_seed(2);
        for _ in 0..200 {
            let dest = sampler.sample(4, &mut rng).unwrap();
            assert!(dest == 3 || dest == 5, "cycle neighbours of 4");
        }
        assert!(sampler.permits_edge(4, 5));
        assert!(sampler.permits_edge(4, 4), "pinned self-loop stays a no-op");
        assert!(!sampler.permits_edge(4, 7));
    }

    #[test]
    fn random_topologies_rebuild_identically_from_the_seed() {
        let a = DestSampler::build(Topology::RandomRegular { degree: 4 }, 32, 7).unwrap();
        let b = DestSampler::build(Topology::RandomRegular { degree: 4 }, 32, 7).unwrap();
        assert_eq!(a, b);
        let c = DestSampler::build(Topology::RandomRegular { degree: 4 }, 32, 8).unwrap();
        assert_ne!(a, c, "different seeds give different graphs");
    }

    #[test]
    fn isolated_vertices_yield_no_candidate() {
        // A path of 1 vertex has no neighbours.
        let sampler = DestSampler::build(Topology::Path, 1, 3).unwrap();
        assert_eq!(sampler.sample(0, &mut rng_from_seed(3)), None);
    }
}

//! Property tests for campaign-spec serialization: any generated
//! [`CampaignSpec`] must survive TOML → parse → re-serialize → parse
//! unchanged, and CSV exports must be byte-identical across runs.

use proptest::prelude::*;
use proptest::{Strategy, TestRng};
use rls_campaign::export;
use rls_campaign::{
    spec_from_str, spec_to_toml_string, ArrivalSpec, Campaign, CampaignSpec, ChurnSpec,
    DynamicSpec, Grid, HitSpec, MExpr, MemoryStore, ProtocolSpec, SpeedSpec, StopSpec,
    TopologySpec, WeightSpec, WorkloadSpec,
};
use rls_graph::Topology;
use rls_workloads::{ArrivalProcess, ChurnProcess, SpeedProfile, WeightDist, Workload};

/// A float that exercises the printer without being pathological: a dyadic
/// rational in `(0, 32]` (exactly representable, round-trips through any
/// faithful formatter).
fn dyadic(rng: &mut TestRng) -> f64 {
    (1 + rng.below(512)) as f64 / 16.0
}

fn mexpr(rng: &mut TestRng) -> MExpr {
    match rng.below(3) {
        0 => MExpr::Absolute(1 + rng.below(100_000)),
        1 => MExpr::PerBin(dyadic(rng)),
        _ => MExpr::NSquared,
    }
}

fn protocol(rng: &mut TestRng) -> ProtocolSpec {
    match rng.below(7) {
        0 => ProtocolSpec::RlsGeq,
        1 => ProtocolSpec::RlsStrict,
        2 => ProtocolSpec::SelfishGlobal {
            rounds: 1 + rng.below(10_000),
        },
        3 => ProtocolSpec::SelfishDistributed {
            rounds: 1 + rng.below(10_000),
        },
        4 => ProtocolSpec::ThresholdAverage {
            rounds: 1 + rng.below(10_000),
        },
        5 => ProtocolSpec::CrsTwoChoices {
            steps: 1 + rng.below(1_000_000),
        },
        _ => ProtocolSpec::GreedyD {
            d: 1 + rng.below(8) as usize,
        },
    }
}

fn workload(rng: &mut TestRng) -> WorkloadSpec {
    WorkloadSpec(match rng.below(8) {
        0 => Workload::AllInOneBin,
        1 => Workload::UniformRandom,
        2 => Workload::TwoChoices,
        3 => Workload::Balanced,
        4 => Workload::OneOverOneUnder,
        5 => Workload::OverUnderPairs {
            pairs: 1 + rng.below(8) as usize,
        },
        6 => Workload::Zipf {
            exponent: dyadic(rng),
        },
        _ => Workload::BlockImbalance {
            offset: rng.below(16),
        },
    })
}

fn topology(rng: &mut TestRng) -> TopologySpec {
    TopologySpec(match rng.below(9) {
        0 => Topology::Complete,
        1 => Topology::Cycle,
        2 => Topology::Path,
        3 => Topology::Torus2D,
        4 => Topology::Hypercube,
        5 => Topology::Star,
        6 => Topology::BinaryTree,
        7 => Topology::RandomRegular {
            degree: 3 + rng.below(5) as usize,
        },
        _ => Topology::ErdosRenyi {
            p: (1 + rng.below(15)) as f64 / 16.0,
        },
    })
}

fn hit(rng: &mut TestRng) -> HitSpec {
    if rng.below(2) == 0 {
        HitSpec::LnFactor(dyadic(rng))
    } else {
        HitSpec::Absolute(dyadic(rng))
    }
}

fn weight(rng: &mut TestRng) -> WeightSpec {
    WeightSpec(match rng.below(3) {
        0 => WeightDist::Unit,
        1 => {
            let lo = 1 + rng.below(8);
            WeightDist::UniformInt {
                lo,
                hi: lo + rng.below(64),
            }
        }
        _ => WeightDist::Pareto {
            alpha: (17 + rng.below(47)) as f64 / 16.0,
            cap: 2 + rng.below(1022),
        },
    })
}

fn speed(rng: &mut TestRng) -> SpeedSpec {
    SpeedSpec(if rng.below(2) == 0 {
        SpeedProfile::Uniform
    } else {
        SpeedProfile::TwoClass {
            speed: 2 + rng.below(14),
            fraction: (1 + rng.below(15)) as f64 / 16.0,
        }
    })
}

fn churn(rng: &mut TestRng) -> ChurnSpec {
    ChurnSpec(match rng.below(4) {
        0 => ChurnProcess::None,
        1 => ChurnProcess::Steady {
            join_rate: dyadic(rng),
            drain_rate: dyadic(rng),
            warm: rng.below(2) == 0,
        },
        2 => ChurnProcess::Flash {
            rate: dyadic(rng),
            size: 1 + rng.below(16),
            warm: rng.below(2) == 0,
        },
        _ => ChurnProcess::Diurnal {
            period: (1 + rng.below(512)) as f64,
            join_rate: dyadic(rng),
            drain_rate: dyadic(rng),
            warm: rng.below(2) == 0,
        },
    })
}

fn arrival(rng: &mut TestRng) -> ArrivalSpec {
    ArrivalSpec(match rng.below(3) {
        0 => ArrivalProcess::Poisson {
            rate_per_bin: dyadic(rng),
        },
        1 => ArrivalProcess::Bursts {
            rate_per_bin: dyadic(rng),
            size: 1 + rng.below(64),
        },
        _ => ArrivalProcess::Hotspot {
            rate_per_bin: dyadic(rng),
            bias: rng.below(17) as f64 / 16.0,
        },
    })
}

fn vec_of<T>(rng: &mut TestRng, max: u64, f: impl Fn(&mut TestRng) -> T) -> Vec<T> {
    (0..1 + rng.below(max)).map(|_| f(rng)).collect()
}

/// Names stressing the TOML string escaping.
const NAMES: &[&str] = &[
    "demo",
    "sweep-1",
    "with \"quotes\"",
    "tabs\tand\nnewlines",
    "back\\slash",
    "spaced out name",
];

/// Generates arbitrary (not necessarily runnable) campaign specs; the
/// round-trip property is about serialization, not executability.
struct SpecStrategy;

impl Strategy for SpecStrategy {
    type Value = CampaignSpec;

    fn generate(&self, rng: &mut TestRng) -> CampaignSpec {
        CampaignSpec {
            name: NAMES[rng.below(NAMES.len() as u64) as usize].to_string(),
            seed: rng.next_u64(),
            trials: 1 + rng.below(64) as usize,
            grid: Grid {
                n: vec_of(rng, 3, |r| 1 + r.below(512) as usize),
                m: vec_of(rng, 3, mexpr),
                protocol: vec_of(rng, 3, protocol),
                workload: vec_of(rng, 3, workload),
                topology: vec_of(rng, 2, topology),
                churn: if rng.below(2) == 0 {
                    Vec::new()
                } else {
                    vec_of(rng, 2, churn)
                },
            },
            stop: StopSpec {
                target_discrepancy: rng.below(16) as f64 / 4.0,
                max_time: (rng.below(2) == 0).then(|| dyadic(rng)),
                max_activations: (rng.below(2) == 0).then(|| rng.next_u64() >> 16),
            },
            hits: vec_of(rng, 3, hit),
            dynamic: (rng.below(2) == 0).then(|| DynamicSpec {
                arrival: arrival(rng),
                warmup: rng.below(64) as f64 / 4.0,
                window: dyadic(rng),
                weights: (rng.below(2) == 0).then(|| weight(rng)),
                speeds: (rng.below(2) == 0).then(|| speed(rng)),
            }),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// TOML → parse → re-serialize → parse is the identity on specs.
    #[test]
    fn toml_round_trip_is_identity(spec in SpecStrategy) {
        let toml = spec_to_toml_string(&spec).expect("specs always render");
        let parsed = spec_from_str(&toml)
            .unwrap_or_else(|e| panic!("parse rendered spec: {e}\n--- rendered ---\n{toml}"));
        prop_assert_eq!(&parsed, &spec, "TOML parse changed the spec:\n{}", toml);

        let again = spec_to_toml_string(&parsed).expect("re-render");
        prop_assert_eq!(&again, &toml, "re-serialization is not a fixed point");
        let reparsed = spec_from_str(&again).expect("reparse");
        prop_assert_eq!(&reparsed, &spec);
    }

    /// The JSON path agrees with the TOML path.
    #[test]
    fn json_and_toml_paths_agree(spec in SpecStrategy) {
        let json = serde_json::to_string(&spec).expect("encode");
        let from_json = spec_from_str(&json).expect("parse JSON spec");
        prop_assert_eq!(from_json, spec);
    }
}

/// `export --csv` row order (and every byte) is deterministic across runs,
/// store instances and thread counts.
#[test]
fn csv_export_is_deterministic_across_runs() {
    let spec = |name: &str| {
        let mut s = CampaignSpec::new(name, 2024, 3);
        s.grid.n = vec![4, 8, 16];
        s.grid.m = vec![MExpr::PerBin(4.0), MExpr::Absolute(48)];
        s.grid.workload = vec![
            WorkloadSpec(Workload::AllInOneBin),
            WorkloadSpec(Workload::UniformRandom),
        ];
        s
    };
    let run = |threads: usize| {
        let store = MemoryStore::new();
        let report = Campaign::new(spec("csv-determinism"))
            .run(&store, threads)
            .unwrap();
        export::to_csv(&report)
    };
    let first = run(1);
    let second = run(4);
    let third = run(8);
    assert_eq!(first, second, "CSV differs between runs/thread counts");
    assert_eq!(first, third);
    // 3 n × 2 m × 2 workloads = 12 rows + header.
    assert_eq!(first.trim().lines().count(), 13);
}

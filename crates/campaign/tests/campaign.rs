//! End-to-end campaign tests: spec parsing, deterministic seed derivation,
//! incremental re-runs against a disk store, and a small 2×2 campaign.

use rls_campaign::{
    cell_key, cell_seed, spec_from_str, Campaign, CampaignSpec, DiskStore, MemoryStore, Store,
};

/// A 2×2 grid (two bin counts × two ball-count expressions).
const SPEC_2X2: &str = r#"
name = "e2e-2x2"
seed = 1337
trials = 3

[grid]
n = [8, 16]
m = ["4x", "n^2"]
protocol = ["rls-geq"]
workload = ["all-in-one-bin"]

[stop]
target_discrepancy = 0.0
"#;

fn temp_store(tag: &str) -> (DiskStore, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("rls-campaign-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (DiskStore::open(&dir).unwrap(), dir)
}

#[test]
fn spec_round_trips_between_toml_and_json() {
    let spec = spec_from_str(SPEC_2X2).unwrap();
    assert_eq!(spec.name, "e2e-2x2");
    assert_eq!(spec.cells().unwrap().len(), 4);
    // TOML → spec → JSON → spec is the identity.
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let reparsed = spec_from_str(&json).unwrap();
    assert_eq!(reparsed, spec);
}

#[test]
fn cell_seeds_are_deterministic_and_position_independent() {
    let spec = spec_from_str(SPEC_2X2).unwrap();
    let cells = spec.cells().unwrap();
    // Same cell → same seed, every time.
    for cell in &cells {
        assert_eq!(cell_seed(spec.seed, cell), cell_seed(spec.seed, cell));
    }
    // Distinct cells → distinct seeds and distinct store keys.
    let seeds: Vec<u64> = cells.iter().map(|c| cell_seed(spec.seed, c)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), cells.len());
    let keys: Vec<String> = cells.iter().map(|c| cell_key(spec.seed, c)).collect();
    assert!(keys.iter().all(|k| k.len() == 64));

    // A cell keeps its seed when the grid around it changes: the first
    // column of a grown grid matches the original cells one-to-one.
    let mut grown = spec.clone();
    grown.grid.n.push(32);
    let grown_cells = grown.cells().unwrap();
    for cell in &cells {
        let twin = grown_cells.iter().find(|c| c == &cell).unwrap();
        assert_eq!(cell_seed(spec.seed, cell), cell_seed(grown.seed, twin));
    }
}

#[test]
fn second_invocation_executes_zero_cells() {
    let (store, dir) = temp_store("rerun");
    let campaign = Campaign::new(spec_from_str(SPEC_2X2).unwrap());

    let first = campaign.run(&store, 2).unwrap();
    assert_eq!(first.executed, 4);
    assert_eq!(first.cached, 0);
    assert_eq!(store.len(), 4);

    // The acceptance check: a re-run against the populated store performs
    // no execution at all and reproduces the same results bit-for-bit.
    let second = campaign.run(&store, 2).unwrap();
    assert_eq!(second.executed, 0);
    assert_eq!(second.cached, 4);
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.result, b.result);
        assert!(b.cached);
    }

    // Status agrees without executing.
    let status = campaign.status(&store).unwrap();
    assert_eq!((status.total, status.cached, status.missing), (4, 4, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn growing_the_grid_only_executes_new_cells() {
    let (store, dir) = temp_store("grow");
    let base = Campaign::new(spec_from_str(SPEC_2X2).unwrap());
    base.run(&store, 2).unwrap();

    let mut grown_spec = spec_from_str(SPEC_2X2).unwrap();
    grown_spec.grid.n.push(24);
    let grown = Campaign::new(grown_spec);
    let report = grown.run(&store, 2).unwrap();
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.executed, 2);
    assert_eq!(report.cached, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_seed_or_trials_invalidates_the_cache() {
    let store = MemoryStore::new();
    let spec = spec_from_str(SPEC_2X2).unwrap();
    Campaign::new(spec.clone()).run(&store, 1).unwrap();

    let mut reseeded = spec.clone();
    reseeded.seed = 7331;
    let report = Campaign::new(reseeded).run(&store, 1).unwrap();
    assert_eq!(report.executed, 4, "a new seed is a new campaign");

    let mut more_trials = spec;
    more_trials.trials = 4;
    let report = Campaign::new(more_trials).run(&store, 1).unwrap();
    assert_eq!(
        report.executed, 4,
        "trial count is part of the cell identity"
    );
}

#[test]
fn results_are_scientifically_sane() {
    let store = MemoryStore::new();
    let spec = spec_from_str(SPEC_2X2).unwrap();
    let report = Campaign::new(CampaignSpec { ..spec })
        .run(&store, 0)
        .unwrap();
    for outcome in &report.outcomes {
        let r = &outcome.result;
        assert_eq!(r.goal_rate, 1.0, "RLS always reaches perfect balance");
        assert!(r.cost.mean > 0.0);
        assert!(r.final_discrepancy.max < 1.0);
        assert_eq!(r.costs.len(), 3);
        // Migrations happen and are bounded by activations.
        assert!(r.migrations.mean > 0.0);
        assert!(r.migrations.mean <= r.activations.mean);
    }
}

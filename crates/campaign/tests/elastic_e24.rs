//! E24 end-to-end: the shipped `specs/dynamic_elastic.toml` campaign runs
//! from the actual spec file and every churned `(policy, topology, churn)`
//! cell reports finite re-convergence times — the paper's
//! self-stabilization claim measured as a recovery time after autoscaling
//! events.

use rls_campaign::{export, spec_from_str, Campaign, MemoryStore};

#[test]
fn e24_elastic_campaign_runs_end_to_end() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/dynamic_elastic.toml"
    );
    let text = std::fs::read_to_string(path).expect("specs/dynamic_elastic.toml present");
    let spec = spec_from_str(&text).expect("E24 spec parses");

    // The experiment's advertised shape: ≥2 policies and ≥2 distinct
    // autoscaling regimes (plus the static "none" anchor).
    assert!(spec.grid.protocol.len() >= 2, "{:?}", spec.grid.protocol);
    assert!(spec.grid.topology.len() >= 2, "{:?}", spec.grid.topology);
    let churned_profiles = spec
        .grid
        .churn
        .iter()
        .filter(|c| c.to_string() != "none")
        .count();
    assert!(churned_profiles >= 2, "{:?}", spec.grid.churn);

    let expected_cells = spec.cells().unwrap().len();
    let report = Campaign::new(spec).run(&MemoryStore::new(), 0).unwrap();
    assert_eq!(report.outcomes.len(), expected_cells);

    let mut churned_cells = 0;
    for outcome in &report.outcomes {
        let cell = &outcome.cell;
        let agg = outcome
            .result
            .dynamic
            .as_ref()
            .expect("E24 cells are dynamic");
        match (&cell.churn, &agg.churn) {
            (Some(profile), Some(churn)) => {
                churned_cells += 1;
                let label = format!("{} on {} under {profile}", cell.protocol, cell.topology);
                assert!(churn.scale_events.mean > 0.0, "{label}: no scale events");
                assert!(
                    churn.reconv_time.mean.is_finite() && churn.reconv_time.mean >= 0.0,
                    "{label}: reconv time {:?}",
                    churn.reconv_time
                );
                assert!(
                    churn.reconverged_rate > 0.0,
                    "{label}: nothing re-converged ({churn:?})"
                );
                assert!(churn.live_bins.mean > 0.0, "{label}");
            }
            (None, None) => {} // the static "none" anchor rows
            (churn, agg) => panic!(
                "churn spec {churn:?} and aggregate {:?} out of sync",
                agg.is_some()
            ),
        }
    }
    // Every (policy, topology) pair ran under every non-none profile.
    assert_eq!(churned_cells, expected_cells * 2 / 3);

    // The CSV export carries the re-convergence columns, filled only for
    // churned rows.
    let csv = export::to_csv(&report);
    let header = csv.lines().next().unwrap();
    assert!(header.contains("churn"), "{header}");
    assert!(header.contains("reconv_time_mean"), "{header}");
    assert_eq!(csv.trim().lines().count(), expected_cells + 1);
}

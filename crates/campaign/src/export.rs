//! Exporting campaign reports as CSV or JSON.

use serde::{Map, Serialize, Value};

use crate::engine::CampaignReport;

/// CSV header used by [`to_csv`].
const CSV_COLUMNS: &[&str] = &[
    "n",
    "m",
    "protocol",
    "workload",
    "topology",
    "churn",
    "trials",
    "unit",
    "cost_mean",
    "cost_ci95",
    "cost_median",
    "cost_p95",
    "activations_mean",
    "migrations_mean",
    "final_discrepancy_mean",
    "goal_rate",
    "scale_events_mean",
    "reconv_time_mean",
    "reconverged_rate",
    "cached",
];

/// Render a report as CSV, one row per cell (summary columns only; the
/// per-trial samples live in the JSON export and the store records).
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&CSV_COLUMNS.join(","));
    out.push('\n');
    for outcome in &report.outcomes {
        let cell = &outcome.cell;
        let r = &outcome.result;
        let row = [
            cell.n.to_string(),
            cell.m.to_string(),
            cell.protocol.to_string(),
            cell.workload.to_string(),
            cell.topology.to_string(),
            cell.churn
                .map_or_else(|| "none".to_string(), |c| c.to_string()),
            cell.trials.to_string(),
            r.unit.clone(),
            format_num(r.cost.mean),
            format_num(r.cost.ci95_half_width),
            format_num(r.cost.median),
            format_num(r.cost.p95),
            format_num(r.activations.mean),
            format_num(r.migrations.mean),
            format_num(r.final_discrepancy.mean),
            format_num(r.goal_rate),
            churn_col(r, |c| format_num(c.scale_events.mean)),
            churn_col(r, |c| format_num(c.reconv_time.mean)),
            churn_col(r, |c| format_num(c.reconverged_rate)),
            outcome.cached.to_string(),
        ];
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Render a report as pretty-printed JSON (full per-cell results, including
/// per-trial costs and hit-time means).
pub fn to_json(report: &CampaignReport) -> String {
    let mut root = Map::new();
    root.insert("name", Value::Str(report.name.clone()));
    root.insert("executed", Value::UInt(report.executed as u64));
    root.insert("cached", Value::UInt(report.cached as u64));
    let cells: Vec<Value> = report
        .outcomes
        .iter()
        .map(|outcome| {
            let mut obj = Map::new();
            obj.insert("cell", outcome.cell.to_value());
            obj.insert("seed", Value::UInt(outcome.seed));
            obj.insert("cached", Value::Bool(outcome.cached));
            obj.insert("result", outcome.result.to_value());
            Value::Object(obj)
        })
        .collect();
    root.insert("cells", Value::Array(cells));
    serde_json::to_string_pretty(&Value::Object(root)).expect("value trees always encode")
}

/// Re-convergence columns: blank for cells without a churn axis, so static
/// sweeps keep clean numeric columns.
fn churn_col(
    result: &crate::cell::CellResult,
    f: impl Fn(&crate::cell::ChurnAggregate) -> String,
) -> String {
    result
        .dynamic
        .as_ref()
        .and_then(|d| d.churn.as_ref())
        .map(f)
        .unwrap_or_default()
}

fn format_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Campaign;
    use crate::spec::{CampaignSpec, MExpr};
    use crate::store::MemoryStore;

    fn report() -> CampaignReport {
        let mut spec = CampaignSpec::new("export-test", 5, 2);
        spec.grid.n = vec![4];
        spec.grid.m = vec![MExpr::PerBin(4.0)];
        Campaign::new(spec).run(&MemoryStore::new(), 1).unwrap()
    }

    #[test]
    fn csv_has_header_and_one_row_per_cell() {
        let csv = to_csv(&report());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("n,m,protocol"));
        assert!(lines[1].starts_with("4,16,rls-geq,all-in-one-bin,complete,none,2,time,"));
        // Same column count everywhere.
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn churned_cells_fill_the_reconvergence_columns() {
        let mut spec = CampaignSpec::new("export-churn", 5, 2);
        spec.grid.n = vec![8];
        spec.grid.m = vec![MExpr::PerBin(8.0)];
        spec.grid.churn = vec![
            "none".parse().unwrap(),
            "steady:0.3:0.3:warm".parse().unwrap(),
        ];
        spec.dynamic = Some(crate::spec::DynamicSpec {
            arrival: "poisson:2".parse().unwrap(),
            warmup: 1.0,
            window: 6.0,
            weights: None,
            speeds: None,
        });
        let report = Campaign::new(spec).run(&MemoryStore::new(), 1).unwrap();
        let csv = to_csv(&report);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        let header: Vec<&str> = lines[0].split(',').collect();
        let churn_idx = header.iter().position(|&c| c == "churn").unwrap();
        let rate_idx = header
            .iter()
            .position(|&c| c == "reconverged_rate")
            .unwrap();
        let static_row: Vec<&str> = lines[1].split(',').collect();
        let churned_row: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(static_row[churn_idx], "none");
        assert_eq!(static_row[rate_idx], "");
        assert_eq!(churned_row[churn_idx], "steady:0.3:0.3:warm");
        assert!(!churned_row[rate_idx].is_empty());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let json = to_json(&report());
        let v = serde_json::parse_value(&json).unwrap();
        let root = v.as_object().unwrap();
        assert_eq!(root.get("name").unwrap().as_str(), Some("export-test"));
        assert_eq!(root.get("cells").unwrap().as_array().unwrap().len(), 1);
    }
}

//! A minimal TOML-subset parser for campaign spec files.
//!
//! The workspace builds offline (no `toml` crate), so this module parses
//! the subset campaign specs need into the vendored `serde` [`Value`] tree,
//! from which [`CampaignSpec`](crate::spec::CampaignSpec) deserializes like
//! it would from JSON:
//!
//! * `key = value` pairs with string, integer, float, boolean and
//!   (homogeneous or mixed) array values;
//! * `[table]` / `[table.subtable]` headers;
//! * inline comments (`#`) and blank lines;
//! * bare and quoted keys.
//!
//! Not supported (and not needed for specs): arrays of tables (`[[x]]`),
//! multi-line/literal strings, datetimes, and inline tables.  Anything
//! outside the subset is a parse error, never a silent misread.

use serde::{Map, Value};

use crate::CampaignError;

/// Render a value tree as TOML (the same subset [`parse`] accepts):
/// scalar and array entries first, then one `[table]` section per nested
/// object (recursively, as dotted headers).  `Null` entries are omitted —
/// the deserializers treat a missing field and `None` identically — so
/// `parse(render(v))` round-trips every tree a campaign spec serializes
/// to.
pub fn render(value: &Value) -> Result<String, CampaignError> {
    let root = value
        .as_object()
        .ok_or_else(|| CampaignError::spec("can only render a table/object as TOML"))?;
    let mut out = String::new();
    render_table(&mut out, root, &mut Vec::new())?;
    Ok(out)
}

fn render_table(out: &mut String, map: &Map, path: &mut Vec<String>) -> Result<(), CampaignError> {
    // Scalars and arrays first (they belong to the current header), then
    // sub-tables.
    let mut tables: Vec<(&String, &Map)> = Vec::new();
    let mut wrote_scalar = false;
    for (key, value) in map.iter() {
        match value {
            Value::Null => {}
            Value::Object(inner) => tables.push((key, inner)),
            other => {
                out.push_str(&render_key(key));
                out.push_str(" = ");
                render_value(out, other)?;
                out.push('\n');
                wrote_scalar = true;
            }
        }
    }
    for (key, inner) in tables {
        if wrote_scalar || !path.is_empty() {
            out.push('\n');
        }
        path.push(key.clone());
        out.push('[');
        out.push_str(
            &path
                .iter()
                .map(|part| render_key(part))
                .collect::<Vec<_>>()
                .join("."),
        );
        out.push_str("]\n");
        render_table(out, inner, path)?;
        path.pop();
        wrote_scalar = true;
    }
    Ok(())
}

fn render_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        format!("\"{}\"", key.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

fn render_value(out: &mut String, value: &Value) -> Result<(), CampaignError> {
    match value {
        Value::Null => out.push_str("false"), // unreachable: nulls are dropped
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(CampaignError::spec("cannot render a non-finite float"));
            }
            // `{}` prints integral floats as "50", which re-parses as an
            // integer; the numeric deserializers accept that, so spec
            // round-trips stay exact.
            out.push_str(&format!("{x}"));
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if matches!(item, Value::Object(_)) {
                    return Err(CampaignError::spec(
                        "arrays of tables cannot be rendered as TOML",
                    ));
                }
                render_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(_) => {
            return Err(CampaignError::spec(
                "inline tables cannot be rendered as TOML",
            ))
        }
    }
    Ok(())
}

/// Parse TOML text into a [`Value::Object`] tree.
pub fn parse(text: &str) -> Result<Value, CampaignError> {
    let mut root = Map::new();
    // Path of the table currently being filled (`[grid]` → ["grid"]).
    let mut current_path: Vec<String> = Vec::new();

    for (line_no, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            if header.starts_with('[') {
                return Err(err(
                    line_no,
                    "arrays of tables (`[[...]]`) are not supported",
                ));
            }
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated table header"))?;
            current_path = header
                .split('.')
                .map(|part| parse_key(part.trim(), line_no))
                .collect::<Result<_, _>>()?;
            if current_path.iter().any(String::is_empty) {
                return Err(err(line_no, "empty table name"));
            }
            // Materialize the table so empty sections still exist.
            ensure_table(&mut root, &current_path, line_no)?;
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected `key = value` or a `[table]` header"))?;
        let key = parse_key(key.trim(), line_no)?;
        let value = parse_value(value_text.trim(), line_no)?;
        let table = ensure_table(&mut root, &current_path, line_no)?;
        if table.get(&key).is_some() {
            return Err(err(line_no, &format!("duplicate key `{key}`")));
        }
        table.insert(key, value);
    }
    Ok(Value::Object(root))
}

fn err(line_no: usize, message: &str) -> CampaignError {
    CampaignError::spec(format!("TOML line {}: {message}", line_no + 1))
}

/// Remove a `#` comment, respecting quoted strings (including escaped
/// quotes inside them).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut skip_next = false;
    for (i, c) in line.char_indices() {
        if skip_next {
            skip_next = false;
            continue;
        }
        match c {
            '\\' if in_string => skip_next = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_key(key: &str, line_no: usize) -> Result<String, CampaignError> {
    if let Some(quoted) = key.strip_prefix('"') {
        return quoted
            .strip_suffix('"')
            .map(str::to_string)
            .ok_or_else(|| err(line_no, "unterminated quoted key"));
    }
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(line_no, &format!("invalid bare key `{key}`")));
    }
    Ok(key.to_string())
}

/// Walk (creating as needed) to the table at `path`.
fn ensure_table<'m>(
    root: &'m mut Map,
    path: &[String],
    line_no: usize,
) -> Result<&'m mut Map, CampaignError> {
    // `Map` hands out only shared references, so rebuild the chain by
    // moving through owned entries: recurse on Value::Object.
    fn walk<'m>(
        map: &'m mut Map,
        path: &[String],
        line_no: usize,
    ) -> Result<&'m mut Map, CampaignError> {
        let Some((head, rest)) = path.split_first() else {
            return Ok(map);
        };
        if map.get(head).is_none() {
            map.insert(head.clone(), Value::Object(Map::new()));
        }
        match map.get_mut(head) {
            Some(Value::Object(inner)) => walk(inner, rest, line_no),
            _ => Err(err(
                line_no,
                &format!("`{head}` is both a value and a table"),
            )),
        }
    }
    walk(root, path, line_no)
}

fn parse_value(text: &str, line_no: usize) -> Result<Value, CampaignError> {
    if text.is_empty() {
        return Err(err(line_no, "missing value"));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(line_no, "unterminated string"))?;
        return unescape(body).map(Value::Str).map_err(|m| err(line_no, &m));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line_no, "unterminated array (arrays must be single-line)"))?;
        let mut items = Vec::new();
        for part in split_array(body, line_no)? {
            items.push(parse_value(part.trim(), line_no)?);
        }
        return Ok(Value::Array(items));
    }
    if text.starts_with('{') {
        return Err(err(
            line_no,
            "inline tables are not supported; use a [table] header",
        ));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML allows underscores in numbers.
    let numeric = text.replace('_', "");
    if let Ok(x) = numeric.parse::<i64>() {
        return Ok(Value::Int(x));
    }
    if let Ok(x) = numeric.parse::<u64>() {
        return Ok(Value::UInt(x));
    }
    if let Ok(x) = numeric.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::Float(x));
        }
    }
    Err(err(line_no, &format!("cannot parse value `{text}`")))
}

/// Split a single-line array body at top-level commas (strings may contain
/// commas; nested arrays are allowed).
fn split_array(body: &str, line_no: usize) -> Result<Vec<&str>, CampaignError> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut skip_next = false;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        if skip_next {
            skip_next = false;
            continue;
        }
        match c {
            '\\' if in_string => skip_next = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| err(line_no, "unbalanced `]` in array"))?;
            }
            ',' if !in_string && depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err(err(line_no, "unterminated string in array"));
    }
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        parts.push(tail);
    }
    Ok(parts)
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling escape".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec_shape() {
        let text = r#"
# A campaign.
name = "demo"        # inline comment
seed = 48_879
trials = 6

[grid]
n = [16, 32]
m = ["1x", "8x", 256]
protocol = ["rls-geq"]
workload = ["all-in-one-bin"]

[stop]
target_discrepancy = 0.0
max_time = 1.5e3
"#;
        let v = parse(text).unwrap();
        let root = v.as_object().unwrap();
        assert_eq!(root.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(root.get("seed").unwrap().as_u64(), Some(48879));
        let grid = root.get("grid").unwrap().as_object().unwrap();
        assert_eq!(grid.get("n").unwrap().as_array().unwrap().len(), 2);
        let m = grid.get("m").unwrap().as_array().unwrap();
        assert_eq!(m[0].as_str(), Some("1x"));
        assert_eq!(m[2].as_u64(), Some(256));
        let stop = root.get("stop").unwrap().as_object().unwrap();
        assert_eq!(stop.get("max_time").unwrap().as_f64(), Some(1500.0));
    }

    #[test]
    fn dotted_headers_nest() {
        let v = parse("[a.b]\nx = 1\n[a.c]\ny = true").unwrap();
        let a = v
            .as_object()
            .unwrap()
            .get("a")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(
            a.get("b")
                .unwrap()
                .as_object()
                .unwrap()
                .get("x")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        assert_eq!(
            a.get("c").unwrap().as_object().unwrap().get("y"),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn strings_with_commas_and_escapes() {
        let v = parse(r#"s = "a,b\"c""#).unwrap();
        assert_eq!(
            v.as_object().unwrap().get("s").unwrap().as_str(),
            Some(r#"a,b"c"#)
        );
        let v = parse(r#"xs = ["a,b", "c"]"#).unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("xs")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn escaped_quotes_do_not_confuse_comments_or_arrays() {
        // An escaped quote must not toggle string tracking: the `#` here
        // is inside the string, the later one is a real comment.
        let v = parse(r#"s = "say \"hi\" # nested" # trailing"#).unwrap();
        assert_eq!(
            v.as_object().unwrap().get("s").unwrap().as_str(),
            Some(r#"say "hi" # nested"#)
        );
        // ...and must not desynchronize array splitting either.
        let v = parse(r#"xs = ["a\"b,c", "d"]"#).unwrap();
        let xs = v
            .as_object()
            .unwrap()
            .get("xs")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].as_str(), Some(r#"a"b,c"#));
        // A trailing escaped backslash before the closing quote.
        let v = parse(r#"s = "path\\""#).unwrap();
        assert_eq!(
            v.as_object().unwrap().get("s").unwrap().as_str(),
            Some("path\\")
        );
    }

    #[test]
    fn nested_arrays() {
        let v = parse("xs = [[1, 2], [3]]").unwrap();
        let xs = v
            .as_object()
            .unwrap()
            .get("xs")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(xs[0].as_array().unwrap().len(), 2);
        assert_eq!(xs[1].as_array().unwrap().len(), 1);
    }

    #[test]
    fn render_parse_round_trips_a_spec_shaped_tree() {
        let mut grid = Map::new();
        grid.insert("n", Value::Array(vec![Value::UInt(16), Value::UInt(32)]));
        grid.insert(
            "m",
            Value::Array(vec![Value::Str("8x".into()), Value::UInt(256)]),
        );
        let mut stop = Map::new();
        stop.insert("target_discrepancy", Value::Float(0.5));
        stop.insert("max_time", Value::Null); // dropped on render
        let mut root = Map::new();
        root.insert("name", Value::Str("demo \"quoted\"".into()));
        root.insert("seed", Value::UInt(42));
        root.insert("enabled", Value::Bool(true));
        root.insert("grid", Value::Object(grid));
        root.insert("stop", Value::Object(stop));
        let original = Value::Object(root);

        let text = render(&original).unwrap();
        let reparsed = parse(&text).unwrap();
        let again = render(&reparsed).unwrap();
        assert_eq!(text, again, "render is a fixed point after one parse");
        let obj = reparsed.as_object().unwrap();
        assert_eq!(obj.get("name").unwrap().as_str(), Some("demo \"quoted\""));
        assert!(obj
            .get("stop")
            .unwrap()
            .as_object()
            .unwrap()
            .get("max_time")
            .is_none());
    }

    #[test]
    fn nested_tables_render_as_dotted_headers() {
        let mut inner = Map::new();
        inner.insert("x", Value::Int(1));
        let mut mid = Map::new();
        mid.insert("b", Value::Object(inner));
        let mut root = Map::new();
        root.insert("a", Value::Object(mid));
        let text = render(&Value::Object(root)).unwrap();
        assert!(text.contains("[a.b]"), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(render(&back).unwrap(), text);
    }

    #[test]
    fn unrenderable_shapes_are_rejected() {
        assert!(render(&Value::Int(3)).is_err());
        let mut root = Map::new();
        root.insert("xs", Value::Array(vec![Value::Object(Map::new())]));
        assert!(render(&Value::Object(root)).is_err());
        let mut nan = Map::new();
        nan.insert("x", Value::Float(f64::NAN));
        assert!(render(&Value::Object(nan)).is_err());
    }

    #[test]
    fn errors_name_the_line() {
        for bad in [
            "x",
            "[unterminated",
            "x = ",
            "x = \"open",
            "[[aot]]\n",
            "x = {a = 1}",
            "x = 1\nx = 2",
            "x = 1\n[x]\ny = 2",
        ] {
            let e = parse(bad).unwrap_err().to_string();
            assert!(e.contains("TOML line"), "{bad}: {e}");
        }
    }
}

//! Campaign specifications: the declarative grid an experiment sweeps.
//!
//! A [`CampaignSpec`] names a parameter grid — bin counts `n`, ball counts
//! `m` (absolute, per-bin or `n²`), protocol variants, workloads and
//! topologies — plus the trial count, stop condition and master seed.  The
//! grid's cartesian product expands into [`CellSpec`]s, the unit of
//! execution and caching.
//!
//! Spec atoms ([`MExpr`], [`ProtocolSpec`], [`WorkloadSpec`],
//! [`TopologySpec`], [`HitSpec`]) serialize as short strings
//! (`"8x"`, `"rls-geq"`, `"zipf:1.5"`, `"random-regular:4"`,
//! `"8*ln(n)"`) so TOML and JSON specs stay one-line readable.

use std::fmt;
use std::str::FromStr;

use rls_graph::Topology;
use rls_workloads::{ArrivalProcess, ChurnProcess, SpeedProfile, WeightDist, Workload};
use serde::{de, Deserialize, Serialize, Value};

use crate::CampaignError;

/// Unwrap the spec-error prefix when embedding an atom parse failure in a
/// deserialization error (avoids "campaign spec error: ... campaign spec
/// error: ..." nesting).
fn atom_err(e: CampaignError) -> de::Error {
    de::Error::custom(match e {
        CampaignError::Spec(m) => m,
        other => other.to_string(),
    })
}

/// How a grid point's ball count is derived from its bin count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MExpr {
    /// A fixed ball count, independent of `n`.
    Absolute(u64),
    /// `m = ⌊factor · n⌋` (written `"8x"`, `"0.5x"`).
    PerBin(f64),
    /// `m = n²` (written `"n^2"`), the regime where the `n²/m` term of
    /// Theorem 1 vanishes.
    NSquared,
}

impl MExpr {
    /// Resolve the ball count for a given bin count.
    pub fn resolve(&self, n: usize) -> u64 {
        match self {
            MExpr::Absolute(m) => *m,
            MExpr::PerBin(factor) => (factor * n as f64).floor() as u64,
            MExpr::NSquared => (n as u64) * (n as u64),
        }
    }
}

impl fmt::Display for MExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MExpr::Absolute(m) => write!(f, "{m}"),
            MExpr::PerBin(factor) => write!(f, "{factor}x"),
            MExpr::NSquared => write!(f, "n^2"),
        }
    }
}

impl FromStr for MExpr {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let s = s.trim();
        if s == "n^2" || s == "n2" {
            return Ok(MExpr::NSquared);
        }
        if let Some(factor) = s.strip_suffix('x') {
            let factor: f64 = factor
                .parse()
                .map_err(|_| CampaignError::spec(format!("bad per-bin ball count `{s}`")))?;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(CampaignError::spec(format!("bad per-bin ball count `{s}`")));
            }
            return Ok(MExpr::PerBin(factor));
        }
        s.parse::<u64>()
            .map(MExpr::Absolute)
            .map_err(|_| CampaignError::spec(format!("bad ball count `{s}` (use 512, 8x or n^2)")))
    }
}

impl Serialize for MExpr {
    fn to_value(&self) -> Value {
        match self {
            MExpr::Absolute(m) => Value::UInt(*m),
            other => Value::Str(other.to_string()),
        }
    }
}

impl Deserialize for MExpr {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        if let Some(m) = v.as_u64() {
            return Ok(MExpr::Absolute(m));
        }
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("ball-count expression", v))?;
        s.parse().map_err(atom_err)
    }
}

/// The protocol a cell runs.
///
/// The first two are the paper's continuous-time process (driven by the
/// `rls-sim` engine, on any topology); the rest are the related-work
/// protocols of Section 2, each carrying its own budget parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolSpec {
    /// RLS, `≥` variant (this paper).  Cost unit: continuous time.
    RlsGeq,
    /// RLS, strict `>` variant (Goldberg; Ganesh et al.).  Continuous time.
    RlsStrict,
    /// Synchronous selfish rerouting with global knowledge of the average
    /// (Even-Dar, Mansour).  Cost unit: rounds.
    SelfishGlobal {
        /// Round budget.
        rounds: u64,
    },
    /// Synchronous selfish load balancing without global knowledge
    /// (Berenbrink et al.).  Cost unit: rounds.
    SelfishDistributed {
        /// Round budget.
        rounds: u64,
    },
    /// Average-threshold load balancing (Ackermann et al.).  Rounds.
    ThresholdAverage {
        /// Round budget.
        rounds: u64,
    },
    /// CRS pair-sampling local search from its own two-choices placement
    /// (Czumaj, Riley, Scheideler).  Cost unit: pair-sampling steps.
    CrsTwoChoices {
        /// Step budget.
        steps: u64,
    },
    /// One-shot greedy `d`-choices placement (Mitzenmacher).  Placements.
    GreedyD {
        /// Number of candidate bins per ball.
        d: usize,
    },
}

impl ProtocolSpec {
    /// The unit the protocol's cost is measured in.
    pub fn cost_unit(&self) -> &'static str {
        match self {
            ProtocolSpec::RlsGeq | ProtocolSpec::RlsStrict => "time",
            ProtocolSpec::SelfishGlobal { .. }
            | ProtocolSpec::SelfishDistributed { .. }
            | ProtocolSpec::ThresholdAverage { .. } => "rounds",
            ProtocolSpec::CrsTwoChoices { .. } => "steps",
            ProtocolSpec::GreedyD { .. } => "placements",
        }
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolSpec::RlsGeq => write!(f, "rls-geq"),
            ProtocolSpec::RlsStrict => write!(f, "rls-strict"),
            ProtocolSpec::SelfishGlobal { rounds } => write!(f, "selfish-global:{rounds}"),
            ProtocolSpec::SelfishDistributed { rounds } => {
                write!(f, "selfish-distributed:{rounds}")
            }
            ProtocolSpec::ThresholdAverage { rounds } => write!(f, "threshold-average:{rounds}"),
            ProtocolSpec::CrsTwoChoices { steps } => write!(f, "crs-two-choices:{steps}"),
            ProtocolSpec::GreedyD { d } => write!(f, "greedy:{d}"),
        }
    }
}

impl FromStr for ProtocolSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let (head, param) = match s.split_once(':') {
            Some((head, param)) => (head.trim(), Some(param.trim())),
            None => (s.trim(), None),
        };
        let parse_u64 = |what: &str| -> Result<u64, CampaignError> {
            param
                .ok_or_else(|| {
                    CampaignError::spec(format!("`{head}` needs a {what}, e.g. `{head}:2000`"))
                })?
                .parse()
                .map_err(|_| CampaignError::spec(format!("bad {what} in `{s}`")))
        };
        match head {
            "rls-geq" => Ok(ProtocolSpec::RlsGeq),
            "rls-strict" => Ok(ProtocolSpec::RlsStrict),
            "selfish-global" => Ok(ProtocolSpec::SelfishGlobal {
                rounds: parse_u64("round budget")?,
            }),
            "selfish-distributed" => Ok(ProtocolSpec::SelfishDistributed {
                rounds: parse_u64("round budget")?,
            }),
            "threshold-average" => Ok(ProtocolSpec::ThresholdAverage {
                rounds: parse_u64("round budget")?,
            }),
            "crs-two-choices" => Ok(ProtocolSpec::CrsTwoChoices {
                steps: parse_u64("step budget")?,
            }),
            "greedy" => Ok(ProtocolSpec::GreedyD {
                d: parse_u64("choice count")? as usize,
            }),
            other => Err(CampaignError::spec(format!("unknown protocol `{other}`"))),
        }
    }
}

impl Serialize for ProtocolSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for ProtocolSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("protocol string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A workload named in a campaign grid (string form of
/// [`rls_workloads::Workload`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec(pub Workload);

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Workload::Zipf { exponent } => write!(f, "zipf:{exponent}"),
            Workload::BlockImbalance { offset } => write!(f, "block-imbalance:{offset}"),
            Workload::OverUnderPairs { pairs } => write!(f, "over-under-pairs:{pairs}"),
            plain => write!(f, "{}", plain.name()),
        }
    }
}

impl FromStr for WorkloadSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let (head, param) = match s.split_once(':') {
            Some((head, param)) => (head.trim(), Some(param.trim())),
            None => (s.trim(), None),
        };
        let workload = match head {
            "all-in-one-bin" => Workload::AllInOneBin,
            "uniform-random" => Workload::UniformRandom,
            "two-choices" => Workload::TwoChoices,
            "balanced" => Workload::Balanced,
            "one-over-one-under" => Workload::OneOverOneUnder,
            "zipf" => Workload::Zipf {
                exponent: param
                    .ok_or_else(|| {
                        CampaignError::spec("`zipf` needs an exponent, e.g. `zipf:1.5`")
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad zipf exponent in `{s}`")))?,
            },
            "block-imbalance" => Workload::BlockImbalance {
                offset: param
                    .ok_or_else(|| {
                        CampaignError::spec(
                            "`block-imbalance` needs an offset, e.g. `block-imbalance:4`",
                        )
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad offset in `{s}`")))?,
            },
            "over-under-pairs" => Workload::OverUnderPairs {
                pairs: param
                    .ok_or_else(|| {
                        CampaignError::spec(
                            "`over-under-pairs` needs a count, e.g. `over-under-pairs:4`",
                        )
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad pair count in `{s}`")))?,
            },
            other => return Err(CampaignError::spec(format!("unknown workload `{other}`"))),
        };
        Ok(WorkloadSpec(workload))
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("workload string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A topology named in a campaign grid (string form of
/// [`rls_graph::Topology`]).  For static cells, `complete` runs on the
/// O(1)-per-event superposition engine and anything else runs
/// graph-restricted RLS; dynamic cells run the live engine on any
/// topology (destinations sampled from the ringing bin's neighbourhood).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec(pub Topology);

impl TopologySpec {
    /// The paper's complete-graph model.
    pub fn complete() -> Self {
        TopologySpec(Topology::Complete)
    }

    /// Whether this is the complete topology (simulated by `rls-sim`).
    pub fn is_complete(&self) -> bool {
        matches!(self.0, Topology::Complete)
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Topology::RandomRegular { degree } => write!(f, "random-regular:{degree}"),
            Topology::ErdosRenyi { p } => write!(f, "erdos-renyi:{p}"),
            plain => write!(f, "{}", plain.name()),
        }
    }
}

impl FromStr for TopologySpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let (head, param) = match s.split_once(':') {
            Some((head, param)) => (head.trim(), Some(param.trim())),
            None => (s.trim(), None),
        };
        let topology = match head {
            "complete" => Topology::Complete,
            "cycle" => Topology::Cycle,
            "path" => Topology::Path,
            "torus" | "torus-2d" | "torus2d" => Topology::Torus2D,
            "hypercube" => Topology::Hypercube,
            "star" => Topology::Star,
            "binary-tree" => Topology::BinaryTree,
            "random-regular" => Topology::RandomRegular {
                degree: param
                    .ok_or_else(|| {
                        CampaignError::spec(
                            "`random-regular` needs a degree, e.g. `random-regular:4`",
                        )
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad degree in `{s}`")))?,
            },
            "erdos-renyi" => Topology::ErdosRenyi {
                p: param
                    .ok_or_else(|| {
                        CampaignError::spec(
                            "`erdos-renyi` needs a probability, e.g. `erdos-renyi:0.1`",
                        )
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad probability in `{s}`")))?,
            },
            other => return Err(CampaignError::spec(format!("unknown topology `{other}`"))),
        };
        Ok(TopologySpec(topology))
    }
}

impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("topology string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A discrepancy threshold whose first-hit time a cell records
/// (continuous-time protocols only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HitSpec {
    /// Threshold `factor · ln n` (written `"8*ln(n)"`), resolved per cell.
    LnFactor(f64),
    /// A fixed threshold (written `"1"` / `"0.999"`).
    Absolute(f64),
}

impl HitSpec {
    /// Resolve to a concrete discrepancy threshold for `n` bins.
    pub fn resolve(&self, n: usize) -> f64 {
        match self {
            HitSpec::LnFactor(factor) => factor * (n as f64).ln(),
            HitSpec::Absolute(x) => *x,
        }
    }
}

impl fmt::Display for HitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitSpec::LnFactor(factor) => write!(f, "{factor}*ln(n)"),
            HitSpec::Absolute(x) => write!(f, "{x}"),
        }
    }
}

impl FromStr for HitSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let s = s.trim();
        if let Some(prefix) = s.strip_suffix("*ln(n)") {
            let factor: f64 = prefix
                .parse()
                .map_err(|_| CampaignError::spec(format!("bad hit threshold `{s}`")))?;
            return Ok(HitSpec::LnFactor(factor));
        }
        s.parse::<f64>().map(HitSpec::Absolute).map_err(|_| {
            CampaignError::spec(format!("bad hit threshold `{s}` (use 1.0 or 8*ln(n))"))
        })
    }
}

impl Serialize for HitSpec {
    fn to_value(&self) -> Value {
        match self {
            HitSpec::Absolute(x) => Value::Float(*x),
            other => Value::Str(other.to_string()),
        }
    }
}

impl Deserialize for HitSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        if let Some(x) = v.as_f64() {
            return Ok(HitSpec::Absolute(x));
        }
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("hit threshold", v))?;
        s.parse().map_err(atom_err)
    }
}

/// An arrival process named in a campaign spec (string form of
/// [`rls_workloads::ArrivalProcess`]): `"poisson:2"`, `"bursts:2:16"`,
/// `"hotspot:2:0.25"`.  Rates are per bin, so the same string keeps the
/// offered load density constant across the grid's `n` axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec(pub ArrivalProcess);

impl fmt::Display for ArrivalSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ArrivalProcess::Poisson { rate_per_bin } => write!(f, "poisson:{rate_per_bin}"),
            ArrivalProcess::Bursts { rate_per_bin, size } => {
                write!(f, "bursts:{rate_per_bin}:{size}")
            }
            ArrivalProcess::Hotspot { rate_per_bin, bias } => {
                write!(f, "hotspot:{rate_per_bin}:{bias}")
            }
        }
    }
}

impl FromStr for ArrivalSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        let mut parts = s.split(':').map(str::trim);
        let head = parts.next().unwrap_or("");
        let rate = |p: Option<&str>| -> Result<f64, CampaignError> {
            p.ok_or_else(|| {
                CampaignError::spec(format!("`{head}` needs a rate, e.g. `{head}:2.0`"))
            })?
            .parse()
            .map_err(|_| CampaignError::spec(format!("bad arrival rate in `{s}`")))
        };
        let process = match head {
            "poisson" => ArrivalProcess::Poisson {
                rate_per_bin: rate(parts.next())?,
            },
            "bursts" => ArrivalProcess::Bursts {
                rate_per_bin: rate(parts.next())?,
                size: parts
                    .next()
                    .ok_or_else(|| {
                        CampaignError::spec("`bursts` needs a size, e.g. `bursts:2:16`")
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad burst size in `{s}`")))?,
            },
            "hotspot" => ArrivalProcess::Hotspot {
                rate_per_bin: rate(parts.next())?,
                bias: parts
                    .next()
                    .ok_or_else(|| {
                        CampaignError::spec("`hotspot` needs a bias, e.g. `hotspot:2:0.25`")
                    })?
                    .parse()
                    .map_err(|_| CampaignError::spec(format!("bad hotspot bias in `{s}`")))?,
            },
            other => {
                return Err(CampaignError::spec(format!(
                    "unknown arrival process `{other}`"
                )))
            }
        };
        if parts.next().is_some() {
            return Err(CampaignError::spec(format!(
                "too many parameters in arrival process `{s}`"
            )));
        }
        process
            .validate()
            .map_err(|e| CampaignError::spec(format!("arrival process `{s}`: {e}")))?;
        Ok(ArrivalSpec(process))
    }
}

impl Serialize for ArrivalSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for ArrivalSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("arrival-process string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A ball-weight law named in a campaign spec (string form of
/// [`rls_workloads::WeightDist`]): `"unit"`, `"uniform:1:8"`,
/// `"pareto:1.5:64"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightSpec(pub WeightDist);

impl fmt::Display for WeightSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for WeightSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        s.parse()
            .map(WeightSpec)
            .map_err(|e| CampaignError::spec(format!("weight distribution `{s}`: {e}")))
    }
}

impl Serialize for WeightSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for WeightSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("weight-distribution string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A membership churn profile named in a campaign grid (string form of
/// [`rls_workloads::ChurnProcess`]): `"none"`, `"steady:0.2:0.1:warm"`,
/// `"flash:0.05:4:warm"`, `"diurnal:200:0.4:0.4"`.  A grid axis rather
/// than a `[dynamic]` field, so one campaign sweeps several autoscaling
/// regimes; it expands into [`CellSpec::churn`] (`"none"` entries become
/// `None`, sharing the static-membership identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec(pub ChurnProcess);

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for ChurnSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        s.parse()
            .map(ChurnSpec)
            .map_err(|e| CampaignError::spec(format!("churn profile `{s}`: {e}")))
    }
}

impl Serialize for ChurnSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for ChurnSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("churn-profile string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// A bin-speed profile named in a campaign spec (string form of
/// [`rls_workloads::SpeedProfile`]): `"uniform"`, `"two-class:4:0.25"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSpec(pub SpeedProfile);

impl fmt::Display for SpeedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for SpeedSpec {
    type Err = CampaignError;

    fn from_str(s: &str) -> Result<Self, CampaignError> {
        s.parse()
            .map(SpeedSpec)
            .map_err(|e| CampaignError::spec(format!("speed profile `{s}`: {e}")))
    }
}

impl Serialize for SpeedSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for SpeedSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| de::Error::type_error("speed-profile string", v))?;
        s.parse().map_err(atom_err)
    }
}

/// Marks a campaign as *dynamic*: instead of running each cell to a balance
/// condition, every cell becomes an online instance whose target load is
/// `ρ = m/n` (the per-ball departure rate is derived as `μ = λ/m`, the
/// M/M/∞ rate that keeps the expected population at `m`), driven by the
/// named arrival process and measured over `[warmup, warmup + window]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicSpec {
    /// Law of the arrival stream (per-bin rate).
    pub arrival: ArrivalSpec,
    /// Simulated time discarded before measurement starts.
    pub warmup: f64,
    /// Length of the measurement window.
    pub window: f64,
    /// Ball-weight law (`None` = unit weights, the classic engine).
    pub weights: Option<WeightSpec>,
    /// Bin-speed profile (`None` = uniform speeds).
    pub speeds: Option<SpeedSpec>,
}

impl DynamicSpec {
    /// Validate the window and heterogeneity parameters.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if !(self.warmup.is_finite() && self.warmup >= 0.0) {
            return Err(CampaignError::spec("dynamic warmup must be ≥ 0"));
        }
        if !(self.window.is_finite() && self.window > 0.0) {
            return Err(CampaignError::spec("dynamic window must be positive"));
        }
        if let Some(w) = &self.weights {
            w.0.validate()
                .map_err(|e| CampaignError::spec(format!("dynamic weights: {e}")))?;
        }
        if let Some(s) = &self.speeds {
            s.0.validate()
                .map_err(|e| CampaignError::spec(format!("dynamic speeds: {e}")))?;
        }
        Ok(())
    }

    /// The resolved weight law (`unit` when the axis is absent).
    pub fn weight_dist(&self) -> WeightDist {
        self.weights.map(|w| w.0).unwrap_or(WeightDist::Unit)
    }

    /// The resolved speed profile (`uniform` when the axis is absent).
    pub fn speed_profile(&self) -> SpeedProfile {
        self.speeds.map(|s| s.0).unwrap_or(SpeedProfile::Uniform)
    }

    /// Whether the cell departs from the classic unit-weight,
    /// uniform-speed engine.
    pub fn is_hetero(&self) -> bool {
        !self.weight_dist().is_unit() || !self.speed_profile().is_uniform()
    }
}

/// When a cell's runs stop.
///
/// The budgets apply to RLS cells (`max_time` only on the complete
/// topology).  Cells whose protocol carries its own budget (rounds /
/// steps / choices) *reject* a stop budget instead of silently ignoring
/// it — mix such protocols with budgeted RLS via separate campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopSpec {
    /// Stop once the discrepancy is at most this value (`0` = perfect
    /// balance).
    pub target_discrepancy: f64,
    /// Optional simulated-time budget (complete-topology RLS cells).
    pub max_time: Option<f64>,
    /// Optional activation budget (RLS cells, any topology).
    pub max_activations: Option<u64>,
}

impl Default for StopSpec {
    fn default() -> Self {
        Self {
            target_discrepancy: 0.0,
            max_time: None,
            max_activations: None,
        }
    }
}

/// The parameter grid: every combination of the listed axes becomes a cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Bin counts.
    pub n: Vec<usize>,
    /// Ball-count expressions, resolved against each `n`.
    pub m: Vec<MExpr>,
    /// Protocol variants.
    pub protocol: Vec<ProtocolSpec>,
    /// Initial-configuration families.
    pub workload: Vec<WorkloadSpec>,
    /// Topologies (defaults to `[complete]`).
    pub topology: Vec<TopologySpec>,
    /// Membership churn profiles (defaults to `[]` = static membership).
    /// Non-`none` entries require a `[dynamic]` section: churn is a law of
    /// the online engine, an offline run-to-balance cell has no clock for
    /// bins to join on.
    pub churn: Vec<ChurnSpec>,
}

/// A declarative experiment campaign.
///
/// ```
/// // Specs are written as TOML or JSON grids; `spec_from_str` accepts
/// // either and fills the defaulted sections (topology, stop, hits).
/// let spec = rls_campaign::spec_from_str(r#"{
///     "name": "doc-example", "seed": 7, "trials": 2,
///     "grid": {"n": [8, 16], "m": ["4x"], "protocol": ["rls-geq"],
///              "workload": ["all-in-one-bin"]}
/// }"#).unwrap();
/// // The grid's cartesian product expands into cells, the unit of
/// // execution and caching; "4x" resolves per n.
/// let cells = spec.cells().unwrap();
/// assert_eq!(cells.len(), 2);
/// assert_eq!(cells[0].m, 32);
/// assert_eq!(cells[1].m, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (used in exports and status output).
    pub name: String,
    /// Master seed; per-cell seeds are derived from it and the cell's
    /// content hash, so they do not depend on grid order or size.
    pub seed: u64,
    /// Monte-Carlo trials per cell.
    pub trials: usize,
    /// The parameter grid.
    pub grid: Grid,
    /// Stop condition shared by all cells.
    pub stop: StopSpec,
    /// Discrepancy thresholds whose first-hit times are recorded.
    pub hits: Vec<HitSpec>,
    /// When present, every cell runs as a dynamic (online) instance with
    /// target load `ρ = m/n` instead of a run-to-balance experiment.
    pub dynamic: Option<DynamicSpec>,
}

impl CampaignSpec {
    /// A minimal spec with the given name, seed and trial count and a
    /// single-point grid; extend via the public fields.
    pub fn new(name: impl Into<String>, seed: u64, trials: usize) -> Self {
        Self {
            name: name.into(),
            seed,
            trials,
            grid: Grid {
                n: vec![],
                m: vec![],
                protocol: vec![ProtocolSpec::RlsGeq],
                workload: vec![WorkloadSpec(Workload::AllInOneBin)],
                topology: vec![TopologySpec::complete()],
                churn: Vec::new(),
            },
            stop: StopSpec::default(),
            hits: Vec::new(),
            dynamic: None,
        }
    }

    /// Validate and expand the grid into cells (row-major over
    /// `workload → protocol → topology → m → n`, matching the order
    /// experiment tables print).
    pub fn cells(&self) -> Result<Vec<CellSpec>, CampaignError> {
        if self.trials == 0 {
            return Err(CampaignError::spec(
                "a campaign needs at least one trial per cell",
            ));
        }
        if let Some(dynamic) = &self.dynamic {
            dynamic.validate()?;
        }
        if self.grid.n.is_empty() || self.grid.m.is_empty() {
            return Err(CampaignError::spec(
                "the grid needs at least one n and one m",
            ));
        }
        if self.grid.protocol.is_empty() || self.grid.workload.is_empty() {
            return Err(CampaignError::spec(
                "the grid needs at least one protocol and one workload",
            ));
        }
        if self.grid.topology.is_empty() {
            return Err(CampaignError::spec("the grid needs at least one topology"));
        }
        for churn in &self.grid.churn {
            churn
                .0
                .validate()
                .map_err(|e| CampaignError::spec(format!("churn profile `{churn}`: {e}")))?;
            if !churn.0.is_none() && self.dynamic.is_none() {
                return Err(CampaignError::spec(
                    "the churn axis requires a [dynamic] section \
                     (offline cells have static membership)",
                ));
            }
        }
        // An absent churn axis is the single static-membership point;
        // explicit `"none"` entries collapse to the same cell identity.
        let churn_axis: Vec<Option<ChurnSpec>> = if self.grid.churn.is_empty() {
            vec![None]
        } else {
            self.grid
                .churn
                .iter()
                .map(|&c| (!c.0.is_none()).then_some(c))
                .collect()
        };
        let mut cells = Vec::new();
        for workload in &self.grid.workload {
            for protocol in &self.grid.protocol {
                for topology in &self.grid.topology {
                    for &churn in &churn_axis {
                        for m in &self.grid.m {
                            for &n in &self.grid.n {
                                cells.push(CellSpec {
                                    n,
                                    m: m.resolve(n),
                                    protocol: *protocol,
                                    workload: *workload,
                                    topology: *topology,
                                    churn,
                                    stop: self.stop,
                                    hits: self.hits.clone(),
                                    trials: self.trials,
                                    dynamic: self.dynamic,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// One fully resolved grid point: the unit of execution and caching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Number of bins.
    pub n: usize,
    /// Number of balls.
    pub m: u64,
    /// Protocol variant.
    pub protocol: ProtocolSpec,
    /// Initial-configuration family.
    pub workload: WorkloadSpec,
    /// Topology (complete = the paper's model).
    pub topology: TopologySpec,
    /// Membership churn profile (`None` = static membership).  Requires
    /// `dynamic`; the churn stream is superposed into the cell's CTMC.
    pub churn: Option<ChurnSpec>,
    /// Stop condition.
    pub stop: StopSpec,
    /// Thresholds whose first-hit times are recorded.
    pub hits: Vec<HitSpec>,
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Dynamic (online) execution parameters, when this is a dynamic cell.
    pub dynamic: Option<DynamicSpec>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_expressions_parse_and_resolve() {
        assert_eq!("512".parse::<MExpr>().unwrap().resolve(16), 512);
        assert_eq!("8x".parse::<MExpr>().unwrap().resolve(16), 128);
        assert_eq!("0.5x".parse::<MExpr>().unwrap().resolve(16), 8);
        assert_eq!("n^2".parse::<MExpr>().unwrap().resolve(16), 256);
        assert!("".parse::<MExpr>().is_err());
        assert!("-3x".parse::<MExpr>().is_err());
        assert!("squared".parse::<MExpr>().is_err());
    }

    #[test]
    fn protocol_strings_round_trip() {
        let protocols = [
            ProtocolSpec::RlsGeq,
            ProtocolSpec::RlsStrict,
            ProtocolSpec::SelfishGlobal { rounds: 2000 },
            ProtocolSpec::SelfishDistributed { rounds: 50 },
            ProtocolSpec::ThresholdAverage { rounds: 400 },
            ProtocolSpec::CrsTwoChoices { steps: 9 },
            ProtocolSpec::GreedyD { d: 2 },
        ];
        for p in protocols {
            assert_eq!(p.to_string().parse::<ProtocolSpec>().unwrap(), p);
            assert!(!p.cost_unit().is_empty());
        }
        assert!("selfish-global".parse::<ProtocolSpec>().is_err());
        assert!("warp-drive".parse::<ProtocolSpec>().is_err());
    }

    #[test]
    fn workload_and_topology_strings_round_trip() {
        for s in [
            "all-in-one-bin",
            "uniform-random",
            "two-choices",
            "balanced",
            "one-over-one-under",
            "zipf:1.5",
            "block-imbalance:4",
            "over-under-pairs:3",
        ] {
            assert_eq!(s.parse::<WorkloadSpec>().unwrap().to_string(), s);
        }
        for s in [
            "complete",
            "cycle",
            "path",
            "torus",
            "hypercube",
            "star",
            "binary-tree",
            "random-regular:4",
            "erdos-renyi:0.25",
        ] {
            assert_eq!(s.parse::<TopologySpec>().unwrap().to_string(), s);
        }
        assert!("zipf".parse::<WorkloadSpec>().is_err());
        assert!("moebius".parse::<TopologySpec>().is_err());
    }

    #[test]
    fn hit_specs_parse_and_resolve() {
        let log = "8*ln(n)".parse::<HitSpec>().unwrap();
        assert_eq!(log, HitSpec::LnFactor(8.0));
        assert!((log.resolve(64) - 8.0 * 64f64.ln()).abs() < 1e-12);
        let abs = "1".parse::<HitSpec>().unwrap();
        assert_eq!(abs.resolve(64), 1.0);
        assert!("eight lns".parse::<HitSpec>().is_err());
    }

    #[test]
    fn grid_expansion_is_the_cartesian_product() {
        let mut spec = CampaignSpec::new("demo", 1, 4);
        spec.grid.n = vec![8, 16];
        spec.grid.m = vec![MExpr::PerBin(8.0), MExpr::NSquared];
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].m, 64);
        assert_eq!(cells[1].m, 128);
        assert_eq!(cells[2].m, 64);
        assert_eq!(cells[3].m, 256);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let spec = CampaignSpec::new("demo", 1, 4);
        assert!(spec.cells().is_err());
        let mut no_trials = CampaignSpec::new("demo", 1, 0);
        no_trials.grid.n = vec![8];
        no_trials.grid.m = vec![MExpr::PerBin(1.0)];
        assert!(no_trials.cells().is_err());
    }

    #[test]
    fn spec_serde_round_trip() {
        let mut spec = CampaignSpec::new("rt", 99, 3);
        spec.grid.n = vec![8];
        spec.grid.m = vec![MExpr::PerBin(8.0), MExpr::Absolute(100)];
        spec.grid.protocol = vec![
            ProtocolSpec::RlsGeq,
            ProtocolSpec::CrsTwoChoices { steps: 7 },
        ];
        spec.hits = vec![HitSpec::LnFactor(8.0), HitSpec::Absolute(1.0)];
        spec.stop.max_time = Some(50.0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        // With the dynamic section present.
        let mut dynamic = CampaignSpec::new("rt-dyn", 1, 2);
        dynamic.grid.n = vec![8];
        dynamic.grid.m = vec![MExpr::PerBin(8.0)];
        dynamic.dynamic = Some(DynamicSpec {
            arrival: "bursts:2:16".parse().unwrap(),
            warmup: 5.0,
            window: 20.0,
            weights: None,
            speeds: None,
        });
        let json = serde_json::to_string(&dynamic).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dynamic);
    }

    #[test]
    fn churn_strings_round_trip() {
        for s in [
            "none",
            "steady:0.1:0.2:warm",
            "steady:0.1:0.2",
            "flash:0.05:4:warm",
            "diurnal:200:0.2:0.2",
        ] {
            assert_eq!(s.parse::<ChurnSpec>().unwrap().to_string(), s);
        }
        for bad in ["steady", "steady:-1:0.2", "flash:0.05:0", "tidal:1:1"] {
            assert!(bad.parse::<ChurnSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn churn_axis_expands_and_requires_a_dynamic_section() {
        let mut spec = CampaignSpec::new("elastic", 1, 2);
        spec.grid.n = vec![8];
        spec.grid.m = vec![MExpr::PerBin(8.0)];
        spec.grid.churn = vec![
            "none".parse().unwrap(),
            "steady:0.2:0.2:warm".parse().unwrap(),
            "flash:0.1:2:warm".parse().unwrap(),
        ];

        // Without [dynamic], any non-none churn entry is rejected.
        let err = spec.cells().unwrap_err().to_string();
        assert!(err.contains("[dynamic]"), "{err}");

        spec.dynamic = Some(DynamicSpec {
            arrival: "poisson:2".parse().unwrap(),
            warmup: 1.0,
            window: 4.0,
            weights: None,
            speeds: None,
        });
        let cells = spec.cells().unwrap();
        assert_eq!(cells.len(), 3);
        // "none" collapses to a static-membership cell (same identity a
        // churn-free grid produces), the others carry their profile.
        assert_eq!(cells[0].churn, None);
        assert!(cells[1].churn.is_some());
        assert!(cells[2].churn.is_some());

        // An all-"none" churn axis is exactly the no-axis grid.
        let mut quiet = spec.clone();
        quiet.grid.churn = vec!["none".parse().unwrap()];
        let mut no_axis = spec.clone();
        no_axis.grid.churn = Vec::new();
        assert_eq!(quiet.cells().unwrap(), no_axis.cells().unwrap());
    }

    #[test]
    fn arrival_strings_round_trip() {
        for s in ["poisson:2", "bursts:1.5:16", "hotspot:2:0.25"] {
            assert_eq!(s.parse::<ArrivalSpec>().unwrap().to_string(), s);
        }
        for bad in [
            "poisson",
            "poisson:zero",
            "poisson:-1",
            "bursts:2",
            "bursts:2:0",
            "hotspot:2",
            "hotspot:2:1.5",
            "poisson:2:3",
            "meteor:1",
        ] {
            assert!(bad.parse::<ArrivalSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn dynamic_spec_validates_windows() {
        let arrival: ArrivalSpec = "poisson:1".parse().unwrap();
        assert!(DynamicSpec {
            arrival,
            warmup: 0.0,
            window: 1.0,
            weights: None,
            speeds: None,
        }
        .validate()
        .is_ok());
        assert!(DynamicSpec {
            arrival,
            warmup: -1.0,
            window: 1.0,
            weights: None,
            speeds: None,
        }
        .validate()
        .is_err());
        assert!(DynamicSpec {
            arrival,
            warmup: 0.0,
            window: 0.0,
            weights: None,
            speeds: None,
        }
        .validate()
        .is_err());
        // An invalid dynamic section fails grid expansion.
        let mut spec = CampaignSpec::new("bad-dyn", 1, 1);
        spec.grid.n = vec![4];
        spec.grid.m = vec![MExpr::PerBin(4.0)];
        spec.dynamic = Some(DynamicSpec {
            arrival,
            warmup: 0.0,
            window: -2.0,
            weights: None,
            speeds: None,
        });
        assert!(spec.cells().is_err());
    }
}

//! Campaign telemetry: store hit/miss counters and per-cell execution
//! timers.
//!
//! Attached via [`Campaign::attach_metrics`](crate::Campaign::attach_metrics);
//! every hook is a write-only atomic tap, so attaching it cannot change
//! which cells execute or what they compute (cell results are a function
//! of the spec and seed alone).

use std::sync::Arc;

use rls_obs::{Counter, Histogram, Registry};

/// Telemetry handles for campaign runs.
#[derive(Debug)]
pub struct CampaignMetrics {
    /// Cells served from the results store without executing.
    pub store_hits: Arc<Counter>,
    /// Cells absent from the store (and therefore executed).
    pub store_misses: Arc<Counter>,
    /// Cells executed to completion.
    pub cells_executed: Arc<Counter>,
    /// Wall-clock time of one cell execution, in nanoseconds.
    pub cell_wall_ns: Arc<Histogram>,
    /// Protocol activations summed over every executed cell's trials
    /// (events/s = this over the summed wall time).
    pub cell_events: Arc<Counter>,
}

impl CampaignMetrics {
    /// Resolves the campaign metric families in `registry`.
    pub fn register(registry: &Registry) -> Arc<Self> {
        Arc::new(Self {
            store_hits: registry.counter(
                "rls_campaign_store_hits_total",
                "Cells answered from the content-addressed results store",
            ),
            store_misses: registry.counter(
                "rls_campaign_store_misses_total",
                "Cells missing from the store at run start",
            ),
            cells_executed: registry.counter(
                "rls_campaign_cells_executed_total",
                "Cells executed to completion",
            ),
            cell_wall_ns: registry.histogram(
                "rls_campaign_cell_wall_ns",
                "Wall-clock nanoseconds per executed cell",
            ),
            cell_events: registry.counter(
                "rls_campaign_cell_events_total",
                "Protocol activations summed over executed cells' trials",
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_register_and_render() {
        let registry = Registry::new();
        let m = CampaignMetrics::register(&registry);
        m.store_hits.inc();
        m.store_misses.add(2);
        m.cells_executed.add(2);
        m.cell_wall_ns.record(1_000_000);
        m.cell_events.add(500);
        let text = registry.render_prometheus();
        assert!(text.contains("rls_campaign_store_hits_total 1"));
        assert!(text.contains("rls_campaign_store_misses_total 2"));
        assert!(text.contains("rls_campaign_cell_wall_ns_count 1"));
        assert!(text.contains("rls_campaign_cell_events_total 500"));
    }
}

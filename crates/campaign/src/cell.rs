//! Executing a single grid cell: `trials` independent runs, each with its
//! own derived random stream, aggregated into a [`CellResult`].

use rls_core::{RebalancePolicy, RlsRule, RlsVariant};
use rls_graph::GraphRls;
use rls_live::{LiveEngine, LiveParams, Reconvergence, SteadyState, DEFAULT_RECONV_THRESHOLD};
use rls_protocols::crs_local_search::{CrsLocalSearch, CrsPlacement};
use rls_protocols::{GreedyD, SelfishDistributed, SelfishGlobal, ThresholdProtocol};
use rls_rng::{Rng64, SplitMix64, StreamFactory, StreamId};
use rls_sim::observer::PhaseTracker;
use rls_sim::stats::Summary;
use rls_sim::{NoAdversary, RlsPolicy, Simulation, StopWhen};
use serde::{Deserialize, Serialize};

use crate::hash::sha256_u64;
use crate::spec::{CellSpec, DynamicSpec, ProtocolSpec};
use crate::CampaignError;

/// Stream-id components within one trial: the workload draw and the
/// protocol dynamics are independent streams, so changing one never
/// perturbs the other.
const COMPONENT_WORKLOAD: u64 = 0;
const COMPONENT_DYNAMICS: u64 = 1;
const COMPONENT_GRAPH: u64 = 2;

/// Derive the cell's master seed from the campaign seed and the cell's
/// content (its canonical JSON).  Two properties matter:
///
/// * the same cell always maps to the same seed, no matter where it sits in
///   the grid or how many other cells exist — so cached results stay valid
///   under grid growth; and
/// * any change to the cell spec (or the campaign seed) remixes the seed
///   through [`SplitMix64`], decorrelating the streams.
pub fn cell_seed(campaign_seed: u64, cell: &CellSpec) -> u64 {
    let canonical = serde_json::to_canonical_string(cell);
    SplitMix64::mix(campaign_seed ^ sha256_u64(canonical.as_bytes()))
}

/// Aggregated results of one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The unit `costs` is measured in (`time`, `rounds`, `steps`,
    /// `placements`) — see [`ProtocolSpec::cost_unit`].
    pub unit: String,
    /// Per-trial costs, in trial order (kept so quantiles and dominance
    /// tests can be computed after the fact without re-running).
    pub costs: Vec<f64>,
    /// Summary of `costs`.
    pub cost: Summary,
    /// Summary of per-trial activation counts.
    pub activations: Summary,
    /// Summary of per-trial migration counts.
    pub migrations: Summary,
    /// Summary of per-trial final discrepancies.
    pub final_discrepancy: Summary,
    /// Fraction of trials that reached the target balance (rather than
    /// exhausting a budget).
    pub goal_rate: f64,
    /// Mean first-hit time for each entry of the cell's `hits` list.
    pub hit_means: Vec<f64>,
    /// Steady-state aggregates (dynamic cells only).
    pub dynamic: Option<DynamicAggregate>,
}

/// Steady-state aggregates of a dynamic cell's trials.  `cost` in the
/// surrounding [`CellResult`] carries the per-trial time-averaged gap (unit
/// `"gap"`); this struct adds the overload quantiles and work-per-arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicAggregate {
    /// Time-averaged gap per trial (same samples as `costs`).
    pub mean_gap: Summary,
    /// Time-weighted p99 overload per trial.
    pub p99_overload: Summary,
    /// Largest overload seen in any trial's window.
    pub max_overload: u64,
    /// Rebalance migrations per arriving ball, per trial.
    pub moves_per_arrival: Summary,
    /// Elastic-membership aggregates (cells with a churn axis only).
    pub churn: Option<ChurnAggregate>,
}

/// Re-convergence aggregates of a churned dynamic cell's trials: how often
/// the membership scaled, how quickly the gap returned to within
/// [`DEFAULT_RECONV_THRESHOLD`] of the average afterwards, and where the
/// live bin count ended up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnAggregate {
    /// Scale events (joins + drains) per trial.
    pub scale_events: Summary,
    /// Per-trial mean time-to-re-converge, over trials with at least one
    /// completed episode.
    pub reconv_time: Summary,
    /// Fraction of all scale events (across trials) that re-converged
    /// inside the run (`1.0` when no events occurred).
    pub reconverged_rate: f64,
    /// Live bin count at the end of each trial.
    pub live_bins: Summary,
}

/// Run every trial of a cell and aggregate.
pub fn run_cell(cell: &CellSpec, seed: u64) -> Result<CellResult, CampaignError> {
    if cell.churn.is_some() && cell.dynamic.is_none() {
        return Err(CampaignError::unsupported(
            "the churn axis requires a [dynamic] section (offline cells have static membership)",
        ));
    }
    if cell.dynamic.is_some() {
        return run_dynamic_cell(cell, seed);
    }
    // Dynamic cells run the live engine over the cell's whole
    // (protocol, topology) pair; the static dispatch below is offline-only.
    match cell.protocol {
        ProtocolSpec::RlsGeq | ProtocolSpec::RlsStrict if cell.topology.is_complete() => {
            run_simulation_cell(cell, seed)
        }
        ProtocolSpec::RlsGeq => run_graph_cell(cell, seed),
        ProtocolSpec::RlsStrict => Err(CampaignError::unsupported(
            "rls-strict is only available on the complete topology",
        )),
        _ if !cell.topology.is_complete() => Err(CampaignError::unsupported(format!(
            "protocol `{}` is only available on the complete topology",
            cell.protocol
        ))),
        _ => run_protocol_cell(cell, seed),
    }
}

/// Map a cell's protocol axis onto the live engine's per-ring rebalance
/// policy.  The budget parameters some protocols carry (`rounds`, `steps`)
/// bound *offline* runs; a dynamic cell is bounded by its measurement
/// window instead, so they are inert here (they still participate in the
/// cell's cache identity).  The synchronous selfish protocols have no
/// per-ring form and stay offline-only.
fn dynamic_policy(protocol: ProtocolSpec) -> Result<RebalancePolicy, CampaignError> {
    match protocol {
        ProtocolSpec::RlsGeq => Ok(RebalancePolicy::Rls {
            variant: RlsVariant::Geq,
        }),
        ProtocolSpec::RlsStrict => Ok(RebalancePolicy::Rls {
            variant: RlsVariant::Strict,
        }),
        ProtocolSpec::GreedyD { d } => {
            let d = u32::try_from(d).map_err(|_| {
                CampaignError::spec(format!("greedy choice count {d} does not fit in u32"))
            })?;
            let policy = RebalancePolicy::GreedyD { d };
            policy.validate().map_err(CampaignError::spec)?;
            Ok(policy)
        }
        ProtocolSpec::ThresholdAverage { .. } => Ok(RebalancePolicy::ThresholdAvg),
        ProtocolSpec::CrsTwoChoices { .. } => Ok(RebalancePolicy::CrsPair),
        other @ (ProtocolSpec::SelfishGlobal { .. } | ProtocolSpec::SelfishDistributed { .. }) => {
            Err(CampaignError::unsupported(format!(
                "protocol `{other}` is synchronous-rounds-only and has no per-ring form; \
                 dynamic cells support rls-geq, rls-strict, greedy, threshold-average and \
                 crs-two-choices"
            )))
        }
    }
}

/// A dynamic (online) cell: the live engine at target load `ρ = m/n`,
/// measured over the spec's steady-state window, on the cell's
/// `(protocol, topology)` pair.
fn run_dynamic_cell(cell: &CellSpec, seed: u64) -> Result<CellResult, CampaignError> {
    let dynamic: &DynamicSpec = cell
        .dynamic
        .as_ref()
        .expect("caller dispatches on dynamic cells");
    dynamic.validate()?;
    let policy = dynamic_policy(cell.protocol)?;
    if !cell.hits.is_empty() {
        return Err(CampaignError::unsupported(
            "hit tracking does not apply to dynamic cells (no stopping time)",
        ));
    }
    if cell.stop != crate::spec::StopSpec::default() {
        // A dynamic cell runs for warmup + window; a stop condition cannot
        // be honoured and silently ignoring it would poison the cache
        // identity.
        return Err(CampaignError::unsupported(
            "dynamic cells ignore [stop]; remove it from the spec",
        ));
    }
    let params = LiveParams::balanced(dynamic.arrival.0, cell.n, cell.m)
        .map_err(|e| CampaignError::spec(format!("cell dynamics: {e}")))?;
    let horizon = dynamic.warmup + dynamic.window;

    let factory = StreamFactory::new(seed);
    // One adjacency per cell (the same instance for every trial, like the
    // offline graph cells): the engine rebuilds it from this seed.
    let graph_seed = factory
        .rng(StreamId::trial(0).with_component(COMPONENT_GRAPH))
        .next_u64();
    let mut acc = Accumulator::new(cell, 0);
    acc.unit = "gap".to_string();
    let mut p99 = Vec::with_capacity(cell.trials);
    let mut moves = Vec::with_capacity(cell.trials);
    let mut max_overload = 0u64;
    let mut scale_events = Vec::new();
    let mut reconv_times = Vec::new();
    let mut live_bins = Vec::new();
    let (mut total_events, mut total_reconverged) = (0u64, 0u64);
    for trial in 0..cell.trials as u64 {
        let mut wl_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_WORKLOAD));
        let initial = cell
            .workload
            .0
            .generate(cell.n, cell.m, &mut wl_rng)
            .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
        // Weighted/speed-aware cells use the heterogeneous constructor
        // (initial ball weights come from the workload stream, leaving the
        // dynamics stream identical to the unit cell's); the classic shape
        // keeps the plain constructor so unit cells stay bit-identical to
        // earlier engine versions.
        let mut engine = if dynamic.is_hetero() {
            LiveEngine::with_hetero(
                initial,
                params,
                policy,
                cell.topology.0,
                graph_seed,
                dynamic.weight_dist(),
                dynamic.speed_profile().speeds(cell.n),
                &mut wl_rng,
            )
        } else {
            LiveEngine::with_policy(initial, params, policy, cell.topology.0, graph_seed)
        }
        .map_err(|e| CampaignError::spec(format!("cell instance: {e}")))?;
        if let Some(churn) = cell.churn {
            engine
                .set_churn(churn.0)
                .map_err(|e| CampaignError::spec(format!("cell churn: {e}")))?;
        }
        let mut run_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_DYNAMICS));
        // Churned cells fan out to a second observer measuring the
        // time-to-re-converge after each scale event; static-membership
        // cells keep the bare observer so their trajectories (and cached
        // identities) stay bit-identical to earlier engine versions.
        let summary = if cell.churn.is_some() {
            let mut obs = (
                SteadyState::new(dynamic.warmup),
                Reconvergence::new(DEFAULT_RECONV_THRESHOLD),
            );
            engine.run_until(horizon, &mut run_rng, &mut obs);
            let (steady, reconv) = obs;
            let episodes = reconv.summary();
            scale_events.push(episodes.scale_events as f64);
            if episodes.reconverged > 0 {
                reconv_times.push(episodes.mean_time);
            }
            total_events += episodes.scale_events;
            total_reconverged += episodes.reconverged;
            live_bins.push(engine.live_count() as f64);
            steady.finish(engine.time())
        } else {
            let mut steady = SteadyState::new(dynamic.warmup);
            engine.run_until(horizon, &mut run_rng, &mut steady);
            steady.finish(engine.time())
        };
        let counters = engine.counters();
        acc.push(
            summary.mean_gap,
            counters.events as f64,
            counters.migrations as f64,
            engine.tracker().discrepancy(),
            true,
        );
        p99.push(summary.p99_overload);
        moves.push(summary.moves_per_arrival);
        max_overload = max_overload.max(summary.max_overload);
    }
    let mut result = acc.finish();
    result.dynamic = Some(DynamicAggregate {
        mean_gap: result.cost,
        p99_overload: Summary::from_samples(&p99),
        max_overload,
        moves_per_arrival: Summary::from_samples(&moves),
        churn: cell.churn.map(|_| ChurnAggregate {
            scale_events: Summary::from_samples(&scale_events),
            reconv_time: Summary::from_samples(&reconv_times),
            reconverged_rate: if total_events == 0 {
                1.0
            } else {
                total_reconverged as f64 / total_events as f64
            },
            live_bins: Summary::from_samples(&live_bins),
        }),
    });
    Ok(result)
}

/// The paper's continuous-time process on the complete topology, via the
/// O(1)-per-event superposition engine, with first-hit tracking.
fn run_simulation_cell(cell: &CellSpec, seed: u64) -> Result<CellResult, CampaignError> {
    let variant = match cell.protocol {
        ProtocolSpec::RlsGeq => RlsVariant::Geq,
        ProtocolSpec::RlsStrict => RlsVariant::Strict,
        _ => unreachable!("caller dispatches on protocol"),
    };
    let thresholds: Vec<f64> = cell.hits.iter().map(|h| h.resolve(cell.n)).collect();
    let mut stop = if cell.stop.target_discrepancy <= 0.0 {
        StopWhen::perfectly_balanced()
    } else {
        StopWhen::x_balanced(cell.stop.target_discrepancy)
    };
    if let Some(t) = cell.stop.max_time {
        stop = stop.with_max_time(t);
    }
    if let Some(a) = cell.stop.max_activations {
        stop = stop.with_max_activations(a);
    }

    let factory = StreamFactory::new(seed);
    let mut acc = Accumulator::new(cell, thresholds.len());
    for trial in 0..cell.trials as u64 {
        let mut wl_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_WORKLOAD));
        let initial = cell
            .workload
            .0
            .generate(cell.n, cell.m, &mut wl_rng)
            .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
        let initial_disc = initial.discrepancy();

        let mut tracker = PhaseTracker::new(thresholds.clone());
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::new(variant)))
            .map_err(|e| CampaignError::spec(format!("cell instance: {e}")))?;
        let mut run_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_DYNAMICS));
        let outcome = sim.run_with(&mut run_rng, stop, &mut NoAdversary, &mut tracker);

        for (i, &threshold) in thresholds.iter().enumerate() {
            // A threshold the run never crossed was either already
            // satisfied at the start (hit at time zero) or never reached
            // within the run (count the full stopping time).
            let hit = tracker.hit_time(i).unwrap_or(if initial_disc <= threshold {
                0.0
            } else {
                outcome.time
            });
            acc.hit_sums[i] += hit;
        }
        acc.push(
            outcome.time,
            outcome.activations as f64,
            outcome.migrations as f64,
            outcome.final_discrepancy,
            outcome.reached_goal,
        );
    }
    Ok(acc.finish())
}

/// Graph-restricted RLS on a non-complete topology.
fn run_graph_cell(cell: &CellSpec, seed: u64) -> Result<CellResult, CampaignError> {
    if !cell.hits.is_empty() {
        return Err(CampaignError::unsupported(
            "hit tracking is only available on the complete topology",
        ));
    }
    if cell.stop.max_time.is_some() {
        // The graph runner only counts activations; silently ignoring a
        // requested cap would cache results under an identity that claims
        // the cap was applied.
        return Err(CampaignError::unsupported(
            "stop.max_time is only available on the complete topology (use max_activations)",
        ));
    }
    let factory = StreamFactory::new(seed);
    // One graph per cell (same instance for every trial, like E16).
    let mut graph_rng = factory.rng(StreamId::trial(0).with_component(COMPONENT_GRAPH));
    let graph = cell
        .topology
        .0
        .build(cell.n, &mut graph_rng)
        .map_err(|e| CampaignError::spec(format!("cell topology: {e}")))?;
    let budget = cell.stop.max_activations.unwrap_or(u64::MAX);
    let process = GraphRls::new(graph, budget);

    let mut acc = Accumulator::new(cell, 0);
    for trial in 0..cell.trials as u64 {
        let mut wl_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_WORKLOAD));
        let initial = cell
            .workload
            .0
            .generate(cell.n, cell.m, &mut wl_rng)
            .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
        let mut run_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_DYNAMICS));
        let out = process.run(&initial, cell.stop.target_discrepancy, &mut run_rng);
        acc.push(
            out.time,
            out.activations as f64,
            out.migrations as f64,
            out.final_discrepancy,
            out.reached_goal,
        );
    }
    Ok(acc.finish())
}

/// The related-work protocols, reported through `ProtocolOutcome`.
fn run_protocol_cell(cell: &CellSpec, seed: u64) -> Result<CellResult, CampaignError> {
    if !cell.hits.is_empty() {
        return Err(CampaignError::unsupported(
            "hit tracking is only available for continuous-time RLS cells",
        ));
    }
    if cell.stop.max_time.is_some() || cell.stop.max_activations.is_some() {
        // These protocols carry their own budget in the protocol spec
        // (rounds / steps / choices); a stop budget cannot be applied, and
        // silently ignoring it would poison the cache identity.
        return Err(CampaignError::unsupported(format!(
            "protocol `{}` carries its own budget; stop.max_time/max_activations only apply \
             to rls cells — put the protocol in its own campaign if the grid mixes both",
            cell.protocol
        )));
    }
    let target = cell.stop.target_discrepancy;
    let factory = StreamFactory::new(seed);
    let mut acc = Accumulator::new(cell, 0);
    for trial in 0..cell.trials as u64 {
        let mut wl_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_WORKLOAD));
        let mut run_rng = factory.rng(StreamId::trial(trial).with_component(COMPONENT_DYNAMICS));
        let out = match cell.protocol {
            ProtocolSpec::SelfishGlobal { rounds } => {
                let start = cell
                    .workload
                    .0
                    .generate(cell.n, cell.m, &mut wl_rng)
                    .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
                SelfishGlobal::new(rounds).run(&start, target, &mut run_rng)
            }
            ProtocolSpec::SelfishDistributed { rounds } => {
                let start = cell
                    .workload
                    .0
                    .generate(cell.n, cell.m, &mut wl_rng)
                    .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
                SelfishDistributed::new(rounds).run(&start, target, &mut run_rng)
            }
            ProtocolSpec::ThresholdAverage { rounds } => {
                let start = cell
                    .workload
                    .0
                    .generate(cell.n, cell.m, &mut wl_rng)
                    .map_err(|e| CampaignError::spec(format!("cell workload: {e}")))?;
                ThresholdProtocol::average_threshold(rounds).run(&start, target, &mut run_rng)
            }
            // CRS and greedy-d draw their own placements (CRS needs the
            // candidate structure of its two-choices start), so the
            // workload axis does not apply; the workload stream seeds the
            // placement instead.
            ProtocolSpec::CrsTwoChoices { steps } => CrsLocalSearch::new(
                CrsPlacement::TwoChoices,
                steps,
            )
            .run(cell.n, cell.m, target, &mut wl_rng),
            ProtocolSpec::GreedyD { d } => GreedyD::new(d).run(cell.n, cell.m, target, &mut wl_rng),
            ProtocolSpec::RlsGeq | ProtocolSpec::RlsStrict => {
                unreachable!("RLS cells dispatch to the simulation/graph runners")
            }
        };
        acc.push(
            out.cost,
            out.activations as f64,
            out.migrations as f64,
            out.final_discrepancy,
            out.reached_goal,
        );
    }
    Ok(acc.finish())
}

/// Per-trial sample collector shared by the three cell runners.
struct Accumulator {
    unit: String,
    trials: usize,
    costs: Vec<f64>,
    activations: Vec<f64>,
    migrations: Vec<f64>,
    discrepancies: Vec<f64>,
    goals: usize,
    hit_sums: Vec<f64>,
}

impl Accumulator {
    fn new(cell: &CellSpec, hit_count: usize) -> Self {
        Self {
            unit: cell.protocol.cost_unit().to_string(),
            trials: cell.trials,
            costs: Vec::with_capacity(cell.trials),
            activations: Vec::with_capacity(cell.trials),
            migrations: Vec::with_capacity(cell.trials),
            discrepancies: Vec::with_capacity(cell.trials),
            goals: 0,
            hit_sums: vec![0.0; hit_count],
        }
    }

    fn push(&mut self, cost: f64, activations: f64, migrations: f64, disc: f64, goal: bool) {
        self.costs.push(cost);
        self.activations.push(activations);
        self.migrations.push(migrations);
        self.discrepancies.push(disc);
        self.goals += goal as usize;
    }

    fn finish(self) -> CellResult {
        CellResult {
            unit: self.unit,
            cost: Summary::from_samples(&self.costs),
            activations: Summary::from_samples(&self.activations),
            migrations: Summary::from_samples(&self.migrations),
            final_discrepancy: Summary::from_samples(&self.discrepancies),
            goal_rate: self.goals as f64 / self.trials as f64,
            hit_means: self
                .hit_sums
                .iter()
                .map(|s| s / self.trials as f64)
                .collect(),
            costs: self.costs,
            dynamic: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HitSpec, StopSpec, TopologySpec, WorkloadSpec};
    use rls_graph::Topology;
    use rls_workloads::Workload;

    fn base_cell() -> CellSpec {
        CellSpec {
            n: 8,
            m: 64,
            protocol: ProtocolSpec::RlsGeq,
            workload: WorkloadSpec(Workload::AllInOneBin),
            topology: TopologySpec::complete(),
            churn: None,
            stop: StopSpec::default(),
            hits: Vec::new(),
            trials: 4,
            dynamic: None,
        }
    }

    #[test]
    fn seeds_are_content_addressed() {
        let a = base_cell();
        let mut b = base_cell();
        assert_eq!(cell_seed(7, &a), cell_seed(7, &b));
        b.m = 65;
        assert_ne!(cell_seed(7, &a), cell_seed(7, &b));
        assert_ne!(cell_seed(7, &a), cell_seed(8, &a));
    }

    #[test]
    fn simulation_cell_reaches_balance_deterministically() {
        let mut cell = base_cell();
        cell.hits = vec![HitSpec::LnFactor(4.0), HitSpec::Absolute(1.0)];
        let r1 = run_cell(&cell, 42).unwrap();
        let r2 = run_cell(&cell, 42).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.costs.len(), 4);
        assert_eq!(r1.goal_rate, 1.0);
        assert_eq!(r1.unit, "time");
        // Hits are ordered: the coarse ln-threshold is crossed before
        // 1-balance, which is reached before the final stopping time.
        assert!(r1.hit_means[0] <= r1.hit_means[1]);
        assert!(r1.hit_means[1] <= r1.cost.mean);
        let r3 = run_cell(&cell, 43).unwrap();
        assert_ne!(r1.costs, r3.costs);
    }

    #[test]
    fn strict_variant_and_budget_cells_run() {
        let mut cell = base_cell();
        cell.protocol = ProtocolSpec::RlsStrict;
        let r = run_cell(&cell, 1).unwrap();
        assert_eq!(r.goal_rate, 1.0);

        let mut capped = base_cell();
        capped.m = 8 * 64;
        capped.stop.max_activations = Some(5);
        let r = run_cell(&capped, 1).unwrap();
        assert_eq!(r.goal_rate, 0.0);
        assert!(r.activations.max <= 5.0);
    }

    #[test]
    fn unsupported_stop_budgets_are_rejected_not_ignored() {
        // Protocols with their own budget reject a stop budget outright.
        let mut cell = base_cell();
        cell.protocol = ProtocolSpec::SelfishGlobal { rounds: 4000 };
        cell.stop.target_discrepancy = 1.0;
        cell.stop.max_activations = Some(100);
        let err = run_cell(&cell, 1).unwrap_err().to_string();
        assert!(err.contains("carries its own budget"), "{err}");
        cell.stop.max_activations = None;
        cell.stop.max_time = Some(5.0);
        assert!(run_cell(&cell, 1).is_err());

        // Graph cells honour max_activations but reject max_time.
        let mut graph = base_cell();
        graph.topology = TopologySpec(Topology::Cycle);
        graph.stop.max_time = Some(5.0);
        let err = run_cell(&graph, 1).unwrap_err().to_string();
        assert!(err.contains("max_time"), "{err}");
    }

    #[test]
    fn graph_cell_runs_and_strict_on_graph_is_rejected() {
        let mut cell = base_cell();
        cell.topology = TopologySpec(Topology::Cycle);
        cell.stop.max_activations = Some(200_000);
        let r = run_cell(&cell, 5).unwrap();
        assert_eq!(r.goal_rate, 1.0);
        assert_eq!(r.unit, "time");

        let mut strict = cell.clone();
        strict.protocol = ProtocolSpec::RlsStrict;
        assert!(run_cell(&strict, 5).is_err());

        let mut with_hits = cell.clone();
        with_hits.hits = vec![HitSpec::Absolute(1.0)];
        assert!(run_cell(&with_hits, 5).is_err());
    }

    #[test]
    fn protocol_cells_report_their_cost_units() {
        for (protocol, unit) in [
            (ProtocolSpec::SelfishGlobal { rounds: 4000 }, "rounds"),
            (ProtocolSpec::SelfishDistributed { rounds: 4000 }, "rounds"),
            (ProtocolSpec::ThresholdAverage { rounds: 4000 }, "rounds"),
            (ProtocolSpec::CrsTwoChoices { steps: 400_000 }, "steps"),
            (ProtocolSpec::GreedyD { d: 2 }, "placements"),
        ] {
            let mut cell = base_cell();
            cell.protocol = protocol;
            cell.workload = WorkloadSpec(Workload::UniformRandom);
            cell.stop.target_discrepancy = 1.0;
            let r = run_cell(&cell, 9).unwrap_or_else(|e| panic!("{protocol}: {e}"));
            assert_eq!(r.unit, unit, "{protocol}");
            assert_eq!(r.costs.len(), 4);
        }
    }

    fn dynamic_cell() -> CellSpec {
        let mut cell = base_cell();
        cell.dynamic = Some(crate::spec::DynamicSpec {
            arrival: "poisson:2".parse().unwrap(),
            warmup: 2.0,
            window: 8.0,
            weights: None,
            speeds: None,
        });
        cell
    }

    #[test]
    fn dynamic_cells_report_steady_state_aggregates() {
        let cell = dynamic_cell();
        let r1 = run_cell(&cell, 77).unwrap();
        let r2 = run_cell(&cell, 77).unwrap();
        assert_eq!(r1, r2, "dynamic cells must be deterministic per seed");
        assert_eq!(r1.unit, "gap");
        assert_eq!(r1.goal_rate, 1.0);
        assert_eq!(r1.costs.len(), 4);
        let agg = r1.dynamic.as_ref().expect("dynamic aggregates present");
        assert_eq!(agg.mean_gap, r1.cost);
        assert!(agg.mean_gap.mean >= 0.0);
        assert!(agg.p99_overload.mean >= 0.0);
        assert!(agg.max_overload as f64 >= agg.p99_overload.mean);
        assert!(agg.moves_per_arrival.mean > 0.0);
        // The live engine actually processed churn.
        assert!(r1.activations.mean > 0.0);
        let r3 = run_cell(&cell, 78).unwrap();
        assert_ne!(r1.costs, r3.costs);
    }

    #[test]
    fn weighted_dynamic_cells_run_and_have_their_own_identity() {
        use crate::spec::{SpeedSpec, WeightSpec};
        use rls_workloads::{SpeedProfile, WeightDist};

        let mut cell = dynamic_cell();
        let dynamic = cell.dynamic.as_mut().unwrap();
        dynamic.weights = Some(WeightSpec(WeightDist::UniformInt { lo: 1, hi: 8 }));
        dynamic.speeds = Some(SpeedSpec(SpeedProfile::TwoClass {
            speed: 4,
            fraction: 0.25,
        }));
        let r1 = run_cell(&cell, 77).unwrap();
        let r2 = run_cell(&cell, 77).unwrap();
        assert_eq!(r1, r2, "weighted dynamic cells must be deterministic");
        assert_eq!(r1.unit, "gap");
        assert!(r1.dynamic.is_some());
        assert!(r1.activations.mean > 0.0);

        // The weighted cell is a different cache identity than the unit
        // cell, and a bad weight law surfaces as a spec error.
        assert_ne!(cell_seed(7, &cell), cell_seed(7, &dynamic_cell()));
        let mut bad = cell.clone();
        bad.dynamic.as_mut().unwrap().weights =
            Some(WeightSpec(WeightDist::UniformInt { lo: 0, hi: 8 }));
        assert!(run_cell(&bad, 1).is_err());
    }

    #[test]
    fn dynamic_cells_reject_unsupported_combinations() {
        let mut with_hits = dynamic_cell();
        with_hits.hits = vec![HitSpec::Absolute(1.0)];
        let err = run_cell(&with_hits, 1).unwrap_err().to_string();
        assert!(err.contains("hit tracking"), "{err}");

        let mut with_stop = dynamic_cell();
        with_stop.stop.max_activations = Some(100);
        let err = run_cell(&with_stop, 1).unwrap_err().to_string();
        assert!(err.contains("[stop]"), "{err}");

        let mut wrong_protocol = dynamic_cell();
        wrong_protocol.protocol = ProtocolSpec::SelfishGlobal { rounds: 100 };
        let err = run_cell(&wrong_protocol, 1).unwrap_err().to_string();
        assert!(err.contains("no per-ring form"), "{err}");
        wrong_protocol.protocol = ProtocolSpec::SelfishDistributed { rounds: 100 };
        assert!(run_cell(&wrong_protocol, 1).is_err());

        // A choice count past u32 is rejected, not silently truncated to
        // a different policy than the spec names.
        let mut huge_d = dynamic_cell();
        huge_d.protocol = ProtocolSpec::GreedyD {
            d: u32::MAX as usize + 2,
        };
        let err = run_cell(&huge_d, 1).unwrap_err().to_string();
        assert!(err.contains("does not fit"), "{err}");
    }

    #[test]
    fn dynamic_cells_run_every_ring_policy_on_every_topology() {
        // The protocol and topology grid axes now apply to dynamic cells:
        // each pair runs deterministically and reports steady-state
        // aggregates.
        for protocol in [
            ProtocolSpec::RlsGeq,
            ProtocolSpec::RlsStrict,
            ProtocolSpec::GreedyD { d: 2 },
            ProtocolSpec::ThresholdAverage { rounds: 100 },
            ProtocolSpec::CrsTwoChoices { steps: 100 },
        ] {
            for topology in [Topology::Complete, Topology::Cycle] {
                let mut cell = dynamic_cell();
                cell.protocol = protocol;
                cell.topology = TopologySpec(topology);
                let r1 = run_cell(&cell, 21).unwrap_or_else(|e| panic!("{protocol}: {e}"));
                let r2 = run_cell(&cell, 21).unwrap();
                assert_eq!(r1, r2, "{protocol} on {topology} must be deterministic");
                assert_eq!(r1.unit, "gap");
                assert!(r1.dynamic.is_some(), "{protocol}");
                assert!(r1.activations.mean > 0.0, "{protocol}");
            }
        }
        // Identities are distinct per (protocol, topology).
        let mut a = dynamic_cell();
        a.protocol = ProtocolSpec::GreedyD { d: 2 };
        let mut b = a.clone();
        b.topology = TopologySpec(Topology::Cycle);
        assert_ne!(cell_seed(7, &a), cell_seed(7, &b));
    }

    fn churn_cell() -> CellSpec {
        let mut cell = dynamic_cell();
        cell.churn = Some("steady:0.3:0.3:warm".parse().unwrap());
        cell
    }

    #[test]
    fn churned_dynamic_cells_report_reconvergence_aggregates() {
        let cell = churn_cell();
        let r1 = run_cell(&cell, 91).unwrap();
        let r2 = run_cell(&cell, 91).unwrap();
        assert_eq!(r1, r2, "churned cells must be deterministic per seed");
        assert_eq!(r1.unit, "gap");
        let agg = r1.dynamic.as_ref().expect("dynamic aggregates present");
        let churn = agg.churn.as_ref().expect("churn aggregates present");
        assert!(churn.scale_events.mean > 0.0, "{churn:?}");
        assert!(churn.reconverged_rate > 0.0, "{churn:?}");
        assert!(churn.reconv_time.mean >= 0.0);
        assert!(churn.live_bins.mean > 0.0, "{churn:?}");
        // A different seed actually reshuffles the membership trajectory.
        let r3 = run_cell(&cell, 92).unwrap();
        assert_ne!(r1.costs, r3.costs);
    }

    #[test]
    fn static_membership_cells_carry_no_churn_block_and_distinct_identity() {
        let plain = run_cell(&dynamic_cell(), 91).unwrap();
        assert!(plain.dynamic.as_ref().unwrap().churn.is_none());
        // The churn axis is part of the cache identity.
        assert_ne!(cell_seed(7, &churn_cell()), cell_seed(7, &dynamic_cell()));
    }

    #[test]
    fn churn_without_a_dynamic_section_is_rejected() {
        let mut cell = base_cell();
        cell.churn = Some("steady:0.3:0.3:warm".parse().unwrap());
        let err = run_cell(&cell, 1).unwrap_err().to_string();
        assert!(err.contains("churn axis requires"), "{err}");
    }

    #[test]
    fn dynamic_and_static_cells_have_distinct_identities() {
        let s = base_cell();
        let d = dynamic_cell();
        assert_ne!(cell_seed(7, &s), cell_seed(7, &d));
    }

    #[test]
    fn invalid_workload_parameters_surface_as_errors() {
        let mut cell = base_cell();
        cell.workload = WorkloadSpec(Workload::OneOverOneUnder);
        cell.m = 63; // not divisible by n = 8
        assert!(run_cell(&cell, 1).is_err());
    }
}

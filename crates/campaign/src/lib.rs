//! # rls-campaign — declarative experiment campaigns with a persistent,
//! content-addressed results store
//!
//! The paper's headline claims (Theorem 1 scaling, the phase decomposition,
//! the protocol-comparison tables) are statements about dense parameter
//! sweeps: grids over `(n, m, protocol, workload, topology)` with many
//! Monte-Carlo trials per point.  This crate turns such a sweep into a
//! *campaign*:
//!
//! 1. **Declare** the grid as a [`CampaignSpec`] — in Rust, or as a TOML /
//!    JSON file (see [`spec_from_str`] and the `specs/` directory at the
//!    repository root).
//! 2. **Expand** it into [`CellSpec`]s, the unit of execution and caching.
//! 3. **Execute** only the cells missing from the [`Store`]
//!    ([`Campaign::run`]), sharded across a work-stealing thread pool.
//! 4. **Persist** each cell's [`CellResult`] under the SHA-256 of its
//!    identity, so re-runs are incremental: a second invocation of the same
//!    campaign executes zero cells, and growing the grid executes exactly
//!    the new cells.
//!
//! Determinism is end-to-end: a cell's seed is derived ([`cell_seed`]) from
//! the campaign seed and the cell's content hash via splitmix, and each
//! trial inside the cell draws its own [`rls_rng::StreamFactory`] streams —
//! so results are bit-identical regardless of thread count, grid order, or
//! which cells happen to be cached.
//!
//! ```
//! use rls_campaign::{Campaign, CampaignSpec, MemoryStore, MExpr};
//!
//! let mut spec = CampaignSpec::new("doc-demo", 7, 3);
//! spec.grid.n = vec![8, 16];
//! spec.grid.m = vec![MExpr::PerBin(8.0)];
//!
//! let store = MemoryStore::new();
//! let campaign = Campaign::new(spec);
//! let first = campaign.run(&store, 0).unwrap();
//! assert_eq!(first.executed, 2);
//! let second = campaign.run(&store, 0).unwrap();
//! assert_eq!(second.executed, 0); // incremental: everything cached
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

pub mod cell;
pub mod engine;
pub mod export;
pub mod hash;
pub mod metrics;
pub mod spec;
pub mod store;
pub mod toml;

pub use cell::{cell_seed, run_cell, CellResult, ChurnAggregate, DynamicAggregate};
pub use engine::{Campaign, CampaignReport, CampaignStatus, CellOutcome};
pub use metrics::CampaignMetrics;
pub use spec::{
    ArrivalSpec, CampaignSpec, CellSpec, ChurnSpec, DynamicSpec, Grid, HitSpec, MExpr,
    ProtocolSpec, SpeedSpec, StopSpec, TopologySpec, WeightSpec, WorkloadSpec,
};
pub use store::{cell_key, CellRecord, DiskStore, MemoryStore, Store, ENGINE_VERSION};

/// Errors from spec parsing, cell execution or the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec (or a spec file) is invalid.
    Spec(String),
    /// The store could not be read or written.
    Store(String),
    /// The cell combines features the engine does not support.
    Unsupported(String),
}

impl CampaignError {
    pub(crate) fn spec(message: impl Into<String>) -> Self {
        CampaignError::Spec(message.into())
    }

    pub(crate) fn store(message: impl Into<String>) -> Self {
        CampaignError::Store(message.into())
    }

    pub(crate) fn unsupported(message: impl Into<String>) -> Self {
        CampaignError::Unsupported(message.into())
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(m) => write!(f, "campaign spec error: {m}"),
            CampaignError::Store(m) => write!(f, "campaign store error: {m}"),
            CampaignError::Unsupported(m) => write!(f, "unsupported campaign cell: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The process-wide store used by the experiment harness (`rls-cli`):
/// a [`DiskStore`] rooted at `$RLS_CAMPAIGN_STORE` when that variable is
/// set and non-empty, otherwise a process-global [`MemoryStore`] (results
/// are shared between the experiments of one invocation but not persisted).
pub fn default_store() -> &'static dyn Store {
    use std::sync::OnceLock;
    static STORE: OnceLock<Box<dyn Store>> = OnceLock::new();
    STORE
        .get_or_init(|| match std::env::var("RLS_CAMPAIGN_STORE") {
            Ok(path) if !path.is_empty() => match DiskStore::open(&path) {
                Ok(store) => Box::new(store),
                Err(e) => {
                    eprintln!("warning: RLS_CAMPAIGN_STORE unusable ({e}); caching in memory");
                    Box::new(MemoryStore::new())
                }
            },
            _ => Box::new(MemoryStore::new()),
        })
        .as_ref()
}

/// Run a campaign against the [`default_store`] with the default thread
/// pool — the one-liner the experiment harness uses.
pub fn run_cached(spec: CampaignSpec) -> Result<CampaignReport, CampaignError> {
    Campaign::new(spec).run(default_store(), 0)
}

/// Render a campaign spec as TOML text that [`spec_from_str`] parses back
/// to an equal spec (the property the spec round-trip tests pin down).
pub fn spec_to_toml_string(spec: &CampaignSpec) -> Result<String, CampaignError> {
    use serde::Serialize;
    toml::render(&spec.to_value())
}

/// Parse a campaign spec from TOML or JSON text (auto-detected: JSON specs
/// start with `{`).
pub fn spec_from_str(text: &str) -> Result<CampaignSpec, CampaignError> {
    let trimmed = text.trim_start();
    let value = if trimmed.starts_with('{') {
        serde_json::parse_value(text).map_err(|e| CampaignError::spec(format!("JSON spec: {e}")))?
    } else {
        toml::parse(text)?
    };
    spec_from_value(&value)
}

/// Deserialize a campaign spec from an already parsed value tree, applying
/// the documented defaults (protocol `rls-geq`, workload `all-in-one-bin`,
/// topology `complete`, stop at perfect balance, no hit thresholds).
pub fn spec_from_value(value: &serde::Value) -> Result<CampaignSpec, CampaignError> {
    use serde::Deserialize;

    let map = value
        .as_object()
        .ok_or_else(|| CampaignError::spec("spec must be a table/object"))?;
    let field_err =
        |field: &str, e: serde::de::Error| CampaignError::spec(format!("field `{field}`: {e}"));
    let get = |field: &str| map.get(field);

    let name = match get("name") {
        Some(v) => String::from_value(v).map_err(|e| field_err("name", e))?,
        None => return Err(CampaignError::spec("missing `name`")),
    };
    let seed = match get("seed") {
        Some(v) => u64::from_value(v).map_err(|e| field_err("seed", e))?,
        None => return Err(CampaignError::spec("missing `seed`")),
    };
    let trials = match get("trials") {
        Some(v) => usize::from_value(v).map_err(|e| field_err("trials", e))?,
        None => return Err(CampaignError::spec("missing `trials`")),
    };

    let grid_map = get("grid")
        .and_then(|v| v.as_object())
        .ok_or_else(|| CampaignError::spec("missing `[grid]` table"))?;
    let grid = Grid {
        n: match grid_map.get("n") {
            Some(v) => Vec::<usize>::from_value(v).map_err(|e| field_err("grid.n", e))?,
            None => return Err(CampaignError::spec("missing `grid.n`")),
        },
        m: match grid_map.get("m") {
            Some(v) => Vec::<MExpr>::from_value(v).map_err(|e| field_err("grid.m", e))?,
            None => return Err(CampaignError::spec("missing `grid.m`")),
        },
        protocol: match grid_map.get("protocol") {
            Some(v) => {
                Vec::<ProtocolSpec>::from_value(v).map_err(|e| field_err("grid.protocol", e))?
            }
            None => vec![ProtocolSpec::RlsGeq],
        },
        workload: match grid_map.get("workload") {
            Some(v) => {
                Vec::<WorkloadSpec>::from_value(v).map_err(|e| field_err("grid.workload", e))?
            }
            None => vec![WorkloadSpec(rls_workloads::Workload::AllInOneBin)],
        },
        topology: match grid_map.get("topology") {
            Some(v) => {
                Vec::<TopologySpec>::from_value(v).map_err(|e| field_err("grid.topology", e))?
            }
            None => vec![TopologySpec::complete()],
        },
        churn: match grid_map.get("churn") {
            Some(v) => Vec::<ChurnSpec>::from_value(v).map_err(|e| field_err("grid.churn", e))?,
            None => Vec::new(),
        },
    };

    let stop = match get("stop") {
        Some(v) => StopSpec::from_value(v).map_err(|e| field_err("stop", e))?,
        None => StopSpec::default(),
    };
    let hits = match get("hits") {
        Some(v) => Vec::<HitSpec>::from_value(v).map_err(|e| field_err("hits", e))?,
        None => Vec::new(),
    };
    let dynamic = match get("dynamic") {
        Some(serde::Value::Null) | None => None,
        Some(v) => Some(DynamicSpec::from_value(v).map_err(|e| field_err("dynamic", e))?),
    };

    Ok(CampaignSpec {
        name,
        seed,
        trials,
        grid,
        stop,
        hits,
        dynamic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML_SPEC: &str = r#"
name = "toml-demo"
seed = 42
trials = 2

[grid]
n = [4, 8]
m = ["4x"]

[stop]
target_discrepancy = 0.0
"#;

    #[test]
    fn toml_and_json_specs_agree() {
        let from_toml = spec_from_str(TOML_SPEC).unwrap();
        let json = serde_json::to_string(&from_toml).unwrap();
        let from_json = spec_from_str(&json).unwrap();
        assert_eq!(from_toml, from_json);
        assert_eq!(from_toml.grid.protocol, vec![ProtocolSpec::RlsGeq]);
        assert_eq!(from_toml.grid.topology, vec![TopologySpec::complete()]);
        assert_eq!(from_toml.cells().unwrap().len(), 2);
    }

    #[test]
    fn spec_errors_name_the_missing_field() {
        for (text, needle) in [
            (
                "seed = 1\ntrials = 2\n[grid]\nn = [4]\nm = [\"1x\"]",
                "name",
            ),
            (
                "name = \"x\"\ntrials = 2\n[grid]\nn = [4]\nm = [\"1x\"]",
                "seed",
            ),
            (
                "name = \"x\"\nseed = 1\n[grid]\nn = [4]\nm = [\"1x\"]",
                "trials",
            ),
            ("name = \"x\"\nseed = 1\ntrials = 2", "grid"),
            (
                "name = \"x\"\nseed = 1\ntrials = 2\n[grid]\nm = [\"1x\"]",
                "grid.n",
            ),
            (
                "name = \"x\"\nseed = 1\ntrials = 2\n[grid]\nn = [4]",
                "grid.m",
            ),
        ] {
            let e = spec_from_str(text).unwrap_err().to_string();
            assert!(e.contains(needle), "{text} → {e}");
        }
    }

    #[test]
    fn stop_defaults_apply() {
        let spec = spec_from_str(TOML_SPEC).unwrap();
        assert_eq!(spec.stop, StopSpec::default());
        assert!(spec.hits.is_empty());
    }
}

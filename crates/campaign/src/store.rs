//! The content-addressed results store.
//!
//! Every executed cell is persisted as a [`CellRecord`] keyed by the SHA-256
//! of its *identity*: engine version, campaign seed and the cell's canonical
//! JSON.  Re-running a campaign therefore only executes cells whose records
//! are absent — edits to the grid invalidate exactly the cells they touch,
//! and nothing else.
//!
//! Two implementations share the [`Store`] trait: [`DiskStore`] (one JSON
//! file per cell under `<root>/<aa>/<rest>.json`, written atomically via a
//! temp file + rename so concurrent writers can share a store) and
//! [`MemoryStore`] (used by the experiment harness when no store directory
//! is configured, and by tests).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::cell::CellResult;
use crate::hash::sha256_hex;
use crate::spec::CellSpec;
use crate::CampaignError;

/// Bump when the execution semantics change (seed derivation, trial
/// streams, result fields) so stale records never masquerade as current.
///
/// Version history: 1 = static cells only; 2 = `CellSpec` gained the
/// `dynamic` cell kind and `CellResult` the steady-state aggregates, which
/// changes every cell's canonical identity; 3 = the engines moved to
/// Fenwick-indexed exchangeable-ball sampling (no per-ball map, no
/// `u32::MAX` ball cap) — same law, different random trajectories per
/// seed, so every cached trial is stale; 4 = dynamic cells run the live
/// engine over the cell's `(protocol, topology)` pair (previously
/// hard-wired to RLS on the complete graph) and derive a per-cell graph
/// seed from the graph stream, which changes dynamic trajectories; 5 =
/// dynamic cells gained the heterogeneity axis (`weights`/`speeds` in
/// `[dynamic]`), which extends `DynamicSpec` and with it every dynamic
/// cell's canonical identity; 6 = the grid gained the elastic-membership
/// `churn` axis (`CellSpec` carries `churn`, `DynamicAggregate` the
/// re-convergence aggregates), which extends every cell's canonical
/// identity.
pub const ENGINE_VERSION: u32 = 6;

/// The content address of a cell: hex SHA-256 of its identity.
pub fn cell_key(campaign_seed: u64, cell: &CellSpec) -> String {
    let identity = serde_json::to_canonical_string(&Identity {
        version: ENGINE_VERSION,
        campaign_seed,
        cell: cell.clone(),
    });
    sha256_hex(identity.as_bytes())
}

#[derive(Serialize, Deserialize)]
struct Identity {
    version: u32,
    campaign_seed: u64,
    cell: CellSpec,
}

/// A persisted cell execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// The content address (also the file name in a [`DiskStore`]).
    pub key: String,
    /// Engine version that produced the record.
    pub version: u32,
    /// The campaign seed the cell ran under.
    pub campaign_seed: u64,
    /// The cell itself (stored in full so records are self-describing and
    /// collisions/tampering are detectable).
    pub cell: CellSpec,
    /// The derived cell seed actually used.
    pub cell_seed: u64,
    /// The results.
    pub result: CellResult,
}

/// Where cell records live.
pub trait Store: Send + Sync {
    /// Fetch a record by key, if present and valid.
    fn get(&self, key: &str) -> Option<CellRecord>;

    /// Cheap presence check (status queries).  Implementations may answer
    /// from metadata without reading the record; a corrupt record can
    /// therefore count as present here and still re-execute on [`get`]
    /// during a run.
    ///
    /// [`get`]: Store::get
    fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Persist a record.
    fn put(&self, record: &CellRecord) -> Result<(), CampaignError>;

    /// Number of records currently stored.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory store (per-process cache; nothing touches disk).
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: Mutex<HashMap<String, CellRecord>>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Store for MemoryStore {
    fn get(&self, key: &str) -> Option<CellRecord> {
        self.records.lock().expect("store lock").get(key).cloned()
    }

    fn put(&self, record: &CellRecord) -> Result<(), CampaignError> {
        self.records
            .lock()
            .expect("store lock")
            .insert(record.key.clone(), record.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        self.records.lock().expect("store lock").len()
    }
}

/// An on-disk store: `<root>/<first two hex chars>/<remaining 62>.json`.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| CampaignError::store(format!("create {}: {e}", root.display())))?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // 64 hex chars; shard on the first two to keep directories small.
        let (shard, rest) = key.split_at(2.min(key.len()));
        self.root.join(shard).join(format!("{rest}.json"))
    }
}

impl Store for DiskStore {
    fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    fn get(&self, key: &str) -> Option<CellRecord> {
        let path = self.path_for(key);
        let text = std::fs::read_to_string(path).ok()?;
        let record: CellRecord = serde_json::from_str(&text).ok()?;
        // Self-check: the record must describe the key it was fetched by
        // and the current engine version (guards against collisions, hand
        // edits and stale formats).
        (record.key == key && record.version == ENGINE_VERSION).then_some(record)
    }

    fn put(&self, record: &CellRecord) -> Result<(), CampaignError> {
        let path = self.path_for(&record.key);
        let dir = path.parent().expect("sharded path has a parent");
        std::fs::create_dir_all(dir)
            .map_err(|e| CampaignError::store(format!("create {}: {e}", dir.display())))?;
        let text = serde_json::to_string_pretty(record)
            .map_err(|e| CampaignError::store(format!("encode record: {e}")))?;
        // Atomic publish: write a unique temp file, then rename over the
        // final path.  Concurrent writers of the same cell produce
        // identical bytes, so last-rename-wins is safe.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, text)
            .map_err(|e| CampaignError::store(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| CampaignError::store(format!("publish {}: {e}", path.display())))?;
        Ok(())
    }

    fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .flatten()
            .filter(|entry| entry.path().is_dir())
            .map(|shard| {
                std::fs::read_dir(shard.path())
                    .map(|files| {
                        files
                            .flatten()
                            .filter(|f| f.path().extension().map(|e| e == "json").unwrap_or(false))
                            .count()
                    })
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProtocolSpec, StopSpec, TopologySpec, WorkloadSpec};
    use rls_workloads::Workload;

    fn record(key_seed: u64) -> CellRecord {
        let cell = CellSpec {
            n: 4,
            m: 16,
            protocol: ProtocolSpec::RlsGeq,
            workload: WorkloadSpec(Workload::AllInOneBin),
            topology: TopologySpec::complete(),
            churn: None,
            stop: StopSpec::default(),
            hits: Vec::new(),
            trials: 2,
            dynamic: None,
        };
        let key = cell_key(key_seed, &cell);
        let seed = crate::cell::cell_seed(key_seed, &cell);
        let result = crate::cell::run_cell(&cell, seed).unwrap();
        CellRecord {
            key,
            version: ENGINE_VERSION,
            campaign_seed: key_seed,
            cell,
            cell_seed: seed,
            result,
        }
    }

    #[test]
    fn keys_depend_on_seed_and_cell() {
        let a = record(1);
        let b = record(2);
        assert_ne!(a.key, b.key);
        assert_eq!(a.key.len(), 64);
        assert_eq!(a.key, cell_key(1, &a.cell));
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        let rec = record(3);
        assert!(store.get(&rec.key).is_none());
        store.put(&rec).unwrap();
        assert_eq!(store.get(&rec.key).unwrap(), rec);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_store_round_trips_and_validates() {
        let dir = std::env::temp_dir().join(format!("rls-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let rec = record(4);
        store.put(&rec).unwrap();
        assert_eq!(store.get(&rec.key).unwrap(), rec);
        assert_eq!(store.len(), 1);
        // A record fetched under the wrong key is rejected.
        let other = record(5);
        assert!(store.get(&other.key).is_none());
        // Corrupt file → treated as missing.
        let path = store.path_for(&rec.key);
        std::fs::write(&path, "not json").unwrap();
        assert!(store.get(&rec.key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The campaign engine: expand the grid, diff it against the store, and
//! execute only the missing cells on a work-stealing pool.
//!
//! Execution shards at cell granularity through
//! [`rls_sim::parallel::parallel_map`] — the same dynamic-claiming pool the
//! Monte-Carlo driver uses — so a grid whose cells vary wildly in cost
//! (balancing times span orders of magnitude across `(n, m)`) still keeps
//! every core busy.  Trials within a cell run sequentially on their own
//! derived streams; results are bit-identical regardless of thread count.

use std::sync::Arc;
use std::time::Instant;

use rls_obs::Registry;
use rls_sim::parallel::{default_threads, parallel_map};

use crate::cell::{cell_seed, run_cell, CellResult};
use crate::metrics::CampaignMetrics;
use crate::spec::{CampaignSpec, CellSpec};
use crate::store::{cell_key, CellRecord, Store, ENGINE_VERSION};
use crate::CampaignError;

/// A campaign bound to its spec.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    /// Telemetry tap; never consulted, so attaching it cannot change
    /// which cells run or what they compute.
    metrics: Option<Arc<CampaignMetrics>>,
}

/// How much of a campaign's grid is already in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Total cells in the grid.
    pub total: usize,
    /// Cells whose results are cached.
    pub cached: usize,
    /// Cells that a run would execute.
    pub missing: usize,
}

/// One cell of a finished campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell.
    pub cell: CellSpec,
    /// The derived seed it ran under.
    pub seed: u64,
    /// Whether the result came from the store (no execution).
    pub cached: bool,
    /// The results.
    pub result: CellResult,
}

/// All outcomes of a campaign run, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-cell outcomes, in grid order.
    pub outcomes: Vec<CellOutcome>,
    /// Number of cells executed by this run.
    pub executed: usize,
    /// Number of cells served from the store.
    pub cached: usize,
}

impl Campaign {
    /// Bind a spec.
    pub fn new(spec: CampaignSpec) -> Self {
        Self {
            spec,
            metrics: None,
        }
    }

    /// Attach campaign telemetry (store hit/miss, per-cell wall time and
    /// event counts) to `registry`.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(CampaignMetrics::register(registry));
    }

    /// The attached telemetry, if any.
    pub fn metrics(&self) -> Option<&Arc<CampaignMetrics>> {
        self.metrics.as_ref()
    }

    /// The underlying spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The expanded grid.
    pub fn cells(&self) -> Result<Vec<CellSpec>, CampaignError> {
        self.spec.cells()
    }

    /// Diff the grid against a store without executing anything (uses the
    /// store's cheap presence check; records are not read).
    pub fn status(&self, store: &dyn Store) -> Result<CampaignStatus, CampaignError> {
        let cells = self.cells()?;
        let cached = cells
            .iter()
            .filter(|cell| store.contains(&cell_key(self.spec.seed, cell)))
            .count();
        Ok(CampaignStatus {
            total: cells.len(),
            cached,
            missing: cells.len() - cached,
        })
    }

    /// Run the campaign: cached cells are read back, missing cells execute
    /// in parallel (`threads = 0` picks the default pool size) and are
    /// persisted before the report is assembled.
    pub fn run(&self, store: &dyn Store, threads: usize) -> Result<CampaignReport, CampaignError> {
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        let cells = self.cells()?;
        let seed = self.spec.seed;

        // Phase 1: split into cached hits and missing work units.
        let mut cached_records: Vec<Option<CellRecord>> = Vec::with_capacity(cells.len());
        let mut from_cache: Vec<bool> = Vec::with_capacity(cells.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            match store.get(&cell_key(seed, cell)) {
                Some(record) => {
                    cached_records.push(Some(record));
                    from_cache.push(true);
                }
                None => {
                    cached_records.push(None);
                    from_cache.push(false);
                    missing.push(i);
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.store_hits.add((cells.len() - missing.len()) as u64);
            m.store_misses.add(missing.len() as u64);
        }

        // Phase 2: execute the missing cells on the work-stealing pool.
        let metrics = self.metrics.as_deref();
        let executed: Vec<Result<CellRecord, CampaignError>> =
            parallel_map(missing.len(), threads, |slot| {
                let cell = &cells[missing[slot]];
                let cell_seed = cell_seed(seed, cell);
                let started = metrics.map(|_| Instant::now());
                let result = run_cell(cell, cell_seed)?;
                if let (Some(m), Some(started)) = (metrics, started) {
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    m.cells_executed.inc();
                    m.cell_wall_ns.record(ns);
                    // Activations are per-trial samples; their sum is the
                    // cell's total event count.
                    let events = result.activations.mean * result.activations.count as f64;
                    m.cell_events.add(events.max(0.0) as u64);
                }
                Ok(CellRecord {
                    key: cell_key(seed, cell),
                    version: ENGINE_VERSION,
                    campaign_seed: seed,
                    cell: cell.clone(),
                    cell_seed,
                    result,
                })
            });

        // Phase 3: persist and assemble in grid order.
        let executed_count = executed.len();
        for (slot, record) in missing.iter().zip(executed) {
            let record = record?;
            store.put(&record)?;
            cached_records[*slot] = Some(record);
        }
        let mut outcomes = Vec::with_capacity(cells.len());
        for (i, record) in cached_records.into_iter().enumerate() {
            let record = record.expect("every slot filled by cache or execution");
            outcomes.push(CellOutcome {
                cell: record.cell,
                seed: record.cell_seed,
                cached: from_cache[i],
                result: record.result,
            });
        }
        Ok(CampaignReport {
            name: self.spec.name.clone(),
            outcomes,
            executed: executed_count,
            cached: cells.len() - executed_count,
        })
    }
}

impl CampaignReport {
    /// Find the outcome for an exact cell spec (experiments use this to
    /// map grid points back to table rows).
    pub fn outcome(&self, cell: &CellSpec) -> Option<&CellOutcome> {
        self.outcomes.iter().find(|o| &o.cell == cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MExpr;
    use crate::store::MemoryStore;

    fn small_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new("engine-test", 11, 3);
        spec.grid.n = vec![4, 8];
        spec.grid.m = vec![MExpr::PerBin(4.0)];
        spec
    }

    #[test]
    fn run_executes_then_caches() {
        let store = MemoryStore::new();
        let campaign = Campaign::new(small_spec());
        let status = campaign.status(&store).unwrap();
        assert_eq!((status.total, status.cached, status.missing), (2, 0, 2));

        let first = campaign.run(&store, 2).unwrap();
        assert_eq!(first.executed, 2);
        assert_eq!(first.cached, 0);
        assert_eq!(first.outcomes.len(), 2);
        assert!(first.outcomes.iter().all(|o| !o.cached));

        let second = campaign.run(&store, 2).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cached, 2);
        assert!(second.outcomes.iter().all(|o| o.cached));
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn grid_growth_reuses_existing_cells() {
        let store = MemoryStore::new();
        let campaign = Campaign::new(small_spec());
        campaign.run(&store, 1).unwrap();

        let mut grown = small_spec();
        grown.grid.n.push(16);
        let report = Campaign::new(grown).run(&store, 1).unwrap();
        assert_eq!(report.executed, 1);
        assert_eq!(report.cached, 2);
        // Existing cells keep their identity (content addressing is
        // independent of grid position).
        assert!(report.outcomes[0].cached && report.outcomes[1].cached);
        assert!(!report.outcomes[2].cached);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let sequential = Campaign::new(small_spec())
            .run(&MemoryStore::new(), 1)
            .unwrap();
        let parallel = Campaign::new(small_spec())
            .run(&MemoryStore::new(), 4)
            .unwrap();
        for (a, b) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn report_lookup_by_cell() {
        let campaign = Campaign::new(small_spec());
        let report = campaign.run(&MemoryStore::new(), 1).unwrap();
        let cells = campaign.cells().unwrap();
        assert!(report.outcome(&cells[1]).is_some());
        let mut other = cells[1].clone();
        other.m = 999;
        assert!(report.outcome(&other).is_none());
    }
}

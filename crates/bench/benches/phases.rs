//! E8 / E9 / E10: the three phases of the analysis, benchmarked from the
//! starting configurations each lemma assumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::{RlsPolicy, Simulation, StopWhen};
use rls_workloads::Workload;

fn phase1(c: &mut Criterion) {
    // Worst-case start, stop at disc ≤ 8 ln n.
    let mut group = c.benchmark_group("e8_phase1_to_log_balance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [64usize, 128] {
        let m = 16 * n as u64;
        let target = 8.0 * (n as f64).ln();
        let initial = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper())).unwrap();
                sim.run(&mut rng_from_seed(seed), StopWhen::x_balanced(target))
            });
        });
    }
    group.finish();
}

fn phase2(c: &mut Criterion) {
    // Block-imbalanced (O(ln n)-balanced) start, stop at disc ≤ 1.
    let mut group = c.benchmark_group("e9_phase2_to_one_balance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [64usize, 128] {
        let m = 16 * n as u64;
        let offset = (4.0 * (n as f64).ln()) as u64;
        let initial = Workload::BlockImbalance {
            offset: offset.min(15),
        }
        .generate(n, m, &mut rng_from_seed(1))
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper())).unwrap();
                sim.run(&mut rng_from_seed(seed), StopWhen::x_balanced(1.0))
            });
        });
    }
    group.finish();
}

fn phase3(c: &mut Criterion) {
    // 1-balanced start with n/4 over/under pairs, stop at perfect balance.
    let mut group = c.benchmark_group("e10_phase3_to_perfect_balance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [64usize, 128] {
        let avg = 16u64;
        let pairs = n / 4;
        let mut loads = vec![avg; n];
        for i in 0..pairs {
            loads[i] += 1;
            loads[n - 1 - i] -= 1;
        }
        let initial = Config::from_loads(loads).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim =
                    Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper())).unwrap();
                sim.run(&mut rng_from_seed(seed), StopWhen::perfectly_balanced())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, phase1, phase2, phase3);
criterion_main!(benches);

//! E15 / E16: the future-work extensions — weighted balls, bin speeds, and
//! non-complete topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_core::Config;
use rls_graph::{GraphRls, Topology};
use rls_protocols::speeds::{SpeedGoal, SpeedRls};
use rls_protocols::weighted::{WeightedGoal, WeightedRls};
use rls_rng::{rng_from_seed, RngExt};

fn weighted_balls(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_weighted_balls");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 8;
    let m = 128;
    for (name, max_weight) in [("unit", 1u64), ("uniform_1_to_4", 4), ("uniform_1_to_8", 8)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = rng_from_seed(seed);
                let weights: Vec<u64> = (0..m).map(|_| 1 + rng.next_below(max_weight)).collect();
                let proto = WeightedRls::new(weights, 50_000_000);
                let mut state = proto.all_in_one_bin(n);
                proto.run(&mut state, WeightedGoal::NashStable, &mut rng)
            });
        });
    }
    group.finish();
}

fn bin_speeds(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_bin_speeds");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 8;
    let m = 256u64;
    for ratio in [1u64, 2, 4] {
        group.bench_function(BenchmarkId::new("fast_slow_ratio", ratio), |b| {
            let speeds: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 2) * (ratio - 1)).collect();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto = SpeedRls::new(speeds.clone(), 50_000_000);
                let mut state = proto.all_in_one_bin(m);
                proto.run(&mut state, SpeedGoal::NashStable, &mut rng_from_seed(seed))
            });
        });
    }
    group.finish();
}

fn topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_topologies");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 16;
    let m = 8 * n as u64;
    for topology in [
        Topology::Complete,
        Topology::Hypercube,
        Topology::Torus2D,
        Topology::Cycle,
    ] {
        let graph = topology.build(n, &mut rng_from_seed(1)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(topology.name()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let start = Config::all_in_one_bin(n, m).unwrap();
                GraphRls::new(graph.clone(), 100_000_000).run(&start, 0.0, &mut rng_from_seed(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, weighted_balls, bin_speeds, topologies);
criterion_main!(benches);

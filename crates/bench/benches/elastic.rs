//! E24 — elastic bin membership on the online engine: events/sec and
//! time-to-re-converge for {rls, greedy-2} under {diurnal, flash}
//! autoscaling churn, against the static-membership baseline.
//!
//! Two questions, one grid:
//!
//! * **cost** — the membership layer (Fenwick add/retire, incremental
//!   adjacency, the superposed churn stream) sits on the hot path of
//!   every event even when no scale event fires.  The `static` rows pin
//!   its overhead against the pre-elastic engine: they run the same
//!   churn-free law through the elastic code and must stay within noise
//!   of the E22 numbers.
//! * **recovery** — after a join or drain, how long until the gap is
//!   back within one ball of the average?  The quality pass prints the
//!   re-convergence table and emits `reconv_time_mean` records per
//!   churn profile, the quick-bench analogue of the E24 campaign.
//!
//! `RLS_BENCH_QUICK=1` trims the grid to a smoke run (seconds): the CI
//! quick-bench job uses it and uploads the JSON-lines records emitted
//! via `RLS_BENCH_JSON` (see `vendor/criterion`).

use criterion::{append_custom_record, criterion_group, criterion_main, Criterion};
use rls_core::{Config, RebalancePolicy};
use rls_graph::Topology;
use rls_live::{LiveEngine, LiveParams, Reconvergence, SteadyState, DEFAULT_RECONV_THRESHOLD};
use rls_rng::rng_from_seed;
use rls_workloads::{ArrivalProcess, ChurnProcess};

use criterion::quick_mode as quick;

/// (n, per-bin load, simulated horizon).
fn shape() -> (usize, u64, f64) {
    if quick() {
        (256, 16, 0.5)
    } else {
        (2048, 64, 4.0)
    }
}

fn policies() -> Vec<(&'static str, RebalancePolicy)> {
    vec![
        ("rls", RebalancePolicy::rls()),
        ("greedy-2", RebalancePolicy::GreedyD { d: 2 }),
    ]
}

/// Churn profiles scaled to the horizon so every timed run sees a
/// handful of *spaced* scale events (an event landing before the
/// previous one resolved restarts the re-convergence clock, so packing
/// them defeats the recovery measurement).
fn churns() -> Vec<(&'static str, ChurnProcess)> {
    let (_, _, horizon) = shape();
    vec![
        ("static", ChurnProcess::None),
        (
            "diurnal",
            ChurnProcess::Diurnal {
                period: horizon / 2.0,
                join_rate: 8.0 / horizon,
                drain_rate: 8.0 / horizon,
                warm: true,
            },
        ),
        (
            "flash",
            ChurnProcess::Flash {
                rate: 4.0 / horizon,
                size: 4,
                warm: true,
            },
        ),
    ]
}

fn engine(policy: RebalancePolicy, churn: ChurnProcess) -> LiveEngine {
    let (n, per_bin, _) = shape();
    let m = n as u64 * per_bin;
    let params = LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 4.0 }, n, m)
        .expect("bench parameters are valid");
    let mut eng = LiveEngine::with_policy(
        Config::uniform(n, per_bin).expect("bench instance is valid"),
        params,
        policy,
        Topology::Complete,
        0xE24,
    )
    .expect("valid engine");
    eng.set_churn(churn)
        .expect("complete topology scales freely");
    eng
}

fn elastic_grid(c: &mut Criterion) {
    let (n, per_bin, horizon) = shape();
    let mut group = c.benchmark_group("elastic");
    group.sample_size(if quick() { 3 } else { 10 });

    let mut recovery: Vec<(String, f64, f64, u64, u64, usize)> = Vec::new();
    for (pname, policy) in policies() {
        // Set by the "static" cell (always first in `churns()`) and used
        // as the re-convergence threshold for this policy's churned cells.
        let mut baseline_gap = DEFAULT_RECONV_THRESHOLD;
        for (cname, churn) in churns() {
            group.bench_function(
                format!("{pname}_{cname}_n{n}_m{}", n as u64 * per_bin),
                |b| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut eng = engine(policy, churn);
                        eng.run_until(horizon, &mut rng_from_seed(seed), &mut ());
                        eng.counters().events
                    });
                },
            );
            // Quality pass, once per cell outside the timed loop: the
            // re-convergence observer rides along and its summary becomes
            // the recovery-time records in BENCH_live.json.  At bench
            // scale (n in the hundreds+) the steady-state gap sits above
            // one ball, so "re-converged" means back at the static
            // baseline gap measured first for this policy (floored at
            // the campaign's one-ball threshold).
            let mut eng = engine(policy, churn);
            let mut obs = (
                SteadyState::new(horizon * 0.25),
                Reconvergence::new(baseline_gap),
            );
            // detlint: allow(D002) benchmark wall-clock, never fed to an engine
            let started = std::time::Instant::now();
            eng.run_until(horizon, &mut rng_from_seed(7), &mut obs);
            let wall = started.elapsed().as_secs_f64();
            let episodes = obs.1.summary();
            let summary = obs.0.finish(eng.time());
            if churn.is_none() {
                baseline_gap = summary.mean_gap.max(DEFAULT_RECONV_THRESHOLD);
            }
            let events = eng.counters().events as f64;
            let cell = format!("elastic/{pname}_{cname}");
            append_custom_record(&format!("{cell}/events_per_sec"), events / wall.max(1e-9));
            if !churn.is_none() {
                append_custom_record(&format!("{cell}/reconv_time_mean"), episodes.mean_time);
                append_custom_record(
                    &format!("{cell}/scale_events"),
                    episodes.scale_events as f64,
                );
            }
            recovery.push((
                format!("{pname} under {cname}"),
                episodes.mean_time,
                episodes.threshold,
                episodes.scale_events,
                episodes.reconverged,
                eng.live_count(),
            ));
        }
    }
    group.finish();

    println!("\nE24 re-convergence after scale events (gap back at the static baseline):");
    for (cell, mean, threshold, events, reconv, live) in &recovery {
        println!(
            "  {cell:<24} mean reconv {mean:>8.4} (threshold {threshold:.2}, \
             {reconv}/{events} events re-converged, {live} bins live at end)"
        );
    }
}

criterion_group!(e24, elastic_grid);
criterion_main!(e24);

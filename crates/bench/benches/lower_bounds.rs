//! E3 / E6 / E7: the lower-bound instances, the sparse (`m ≤ n`) case and
//! the divisibility overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_bench::balance_once;
use rls_core::Config;
use rls_rng::rng_from_seed;
use rls_workloads::Workload;

fn lower_bound_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_lower_bounds");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [32usize, 64] {
        let m = 8 * n as u64;
        let one_bin = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(
            BenchmarkId::new("all_in_one_bin", n),
            &one_bin,
            |b, initial| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    balance_once(initial, &mut rng_from_seed(seed))
                });
            },
        );
        let pair = Workload::OneOverOneUnder
            .generate(n, m, &mut rng_from_seed(1))
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("one_over_one_under", n),
            &pair,
            |b, initial| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    balance_once(initial, &mut rng_from_seed(seed))
                });
            },
        );
    }
    group.finish();
}

fn sparse_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sparse_case_m_le_n");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [64usize, 128, 256] {
        let m = n as u64; // m = n, Lemma 8 regime
        let initial = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                balance_once(initial, &mut rng_from_seed(seed))
            });
        });
    }
    group.finish();
}

fn divisibility_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_divisibility");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 64usize;
    for r in [0u64, 1, 31, 63] {
        let m = 8 * n as u64 + r;
        let initial = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(BenchmarkId::new("remainder", r), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                balance_once(initial, &mut rng_from_seed(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    lower_bound_instances,
    sparse_case,
    divisibility_overhead
);
criterion_main!(benches);

//! E23 — online heterogeneity: events/sec and certified optimality gap
//! for {unit, pareto-weights} × {uniform, 2-speed-class} ×
//! {rls, greedy-2, threshold-avg} under identical Poisson churn on the
//! complete graph.
//!
//! Two questions, one grid:
//!
//! * **cost** — what does weight/speed awareness do to raw event
//!   throughput?  The unit-weight uniform-speed rows run the classic
//!   engine (no per-ball state) and anchor against E22; the weighted rows
//!   add per-ball weight storage and the rate-mass Fenwick, the 2-class
//!   rows re-weight the departure/ring clocks.
//! * **quality** — how far from provably optimal does each policy park
//!   the system?  The table after the timing rows reports the largest
//!   normalized load `max_i W_i/s_i` next to the *certified* gap
//!   `max_i W_i/s_i − LB(Q‖C_max)`, where the lower bound comes from
//!   `rls-analysis::makespan_bound` on the engine's exact multiset of
//!   ball weights — an optimality certificate, not a heuristic baseline.
//!
//! `RLS_BENCH_QUICK=1` trims the grid to a smoke run (seconds): the CI
//! quick-bench job uses it and uploads the JSON-lines records emitted via
//! `RLS_BENCH_JSON` (see `vendor/criterion`).

use criterion::{append_custom_record, criterion_group, criterion_main, Criterion};
use rls_core::{Config, RebalancePolicy};
use rls_graph::Topology;
use rls_live::{LiveEngine, LiveParams, SteadyState};
use rls_obs::Registry;
use rls_rng::rng_from_seed;
use rls_workloads::{ArrivalProcess, SpeedProfile, WeightDist};

use criterion::quick_mode as quick;

/// (n, per-bin load, simulated horizon).
fn shape() -> (usize, u64, f64) {
    if quick() {
        (256, 16, 0.5)
    } else {
        (4096, 64, 2.0)
    }
}

fn policies() -> Vec<(&'static str, RebalancePolicy)> {
    vec![
        ("rls", RebalancePolicy::rls()),
        ("greedy-2", RebalancePolicy::GreedyD { d: 2 }),
        ("threshold-avg", RebalancePolicy::ThresholdAvg),
    ]
}

fn weight_axes() -> Vec<(&'static str, WeightDist)> {
    vec![
        ("unit", WeightDist::Unit),
        (
            "pareto",
            WeightDist::Pareto {
                alpha: 1.5,
                cap: 64,
            },
        ),
    ]
}

fn speed_axes() -> Vec<(&'static str, SpeedProfile)> {
    vec![
        ("uniform", SpeedProfile::Uniform),
        (
            "2class",
            SpeedProfile::TwoClass {
                speed: 4,
                fraction: 0.25,
            },
        ),
    ]
}

fn engine(policy: RebalancePolicy, dist: WeightDist, profile: SpeedProfile) -> LiveEngine {
    let (n, per_bin, _) = shape();
    let m = n as u64 * per_bin;
    let params = LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 4.0 }, n, m)
        .expect("bench parameters are valid");
    let initial = Config::uniform(n, per_bin).expect("bench instance is valid");
    if dist.is_unit() && profile.is_uniform() {
        // The classic shape runs the classic constructor: the unit rows
        // measure the pre-heterogeneity hot path, not a degenerate
        // weighted one.
        LiveEngine::with_policy(initial, params, policy, Topology::Complete, 0xE23)
    } else {
        LiveEngine::with_hetero(
            initial,
            params,
            policy,
            Topology::Complete,
            0xE23,
            dist,
            profile.speeds(n),
            &mut rng_from_seed(0xE23),
        )
    }
    .expect("valid engine")
}

/// Largest normalized load and its certified distance from the `Q‖C_max`
/// lower bound on the engine's exact ball-weight multiset.
fn certified(engine: &LiveEngine) -> (f64, f64) {
    let n = engine.config().n();
    let speeds: Vec<u64> = (0..n).map(|b| engine.speed(b)).collect();
    let norm_max = (0..n)
        .map(|b| engine.normalized_load(b))
        .fold(0.0f64, f64::max);
    let bound = if engine.stores_ball_weights() {
        let weights: Vec<u64> = (0..n)
            .flat_map(|b| engine.ball_weights(b).expect("weighted engine").iter())
            .copied()
            .collect();
        rls_analysis::makespan_bound(&weights, &speeds)
    } else {
        rls_analysis::makespan_bound_unit(engine.config().m(), &speeds)
    };
    (norm_max, (norm_max - bound.lower).max(0.0))
}

fn hetero_grid(c: &mut Criterion) {
    let (n, per_bin, horizon) = shape();
    let mut group = c.benchmark_group("hetero");
    group.sample_size(if quick() { 3 } else { 10 });

    // Timing rows: wall time per fixed simulated horizon = events/sec up
    // to the (printed) event count.
    let mut gaps: Vec<(String, f64, f64, u64)> = Vec::new();
    for (wname, dist) in weight_axes() {
        for (sname, profile) in speed_axes() {
            for (pname, policy) in policies() {
                group.bench_function(
                    format!("{pname}_{wname}_{sname}_n{n}_m{}", n as u64 * per_bin),
                    |b| {
                        let mut seed = 0u64;
                        b.iter(|| {
                            seed += 1;
                            let mut eng = engine(policy, dist, profile);
                            eng.run_until(horizon, &mut rng_from_seed(seed), &mut ());
                            eng.counters().events
                        });
                    },
                );
                // Quality, measured once per cell outside the timed loop
                // (same seed across cells → identical churn law).  This
                // pass carries the telemetry tap: its counters feed the
                // events/s and descent-depth records in BENCH_live.json.
                let registry = Registry::new();
                let mut eng = engine(policy, dist, profile);
                eng.attach_metrics(&registry);
                let mut steady = SteadyState::new(horizon * 0.25);
                // detlint: allow(D002) benchmark wall-clock, never fed to an engine
                let started = std::time::Instant::now();
                eng.run_until(horizon, &mut rng_from_seed(7), &mut steady);
                let wall = started.elapsed().as_secs_f64();
                let metrics = eng.metrics().expect("metrics attached above");
                let cell = format!("hetero/{pname}_{wname}_{sname}");
                append_custom_record(
                    &format!("{cell}/events_per_sec"),
                    metrics.events.get() as f64 / wall.max(1e-9),
                );
                append_custom_record(
                    &format!("{cell}/mean_descent_depth"),
                    metrics.descent_depth.snapshot().mean(),
                );
                let (norm_max, gap) = certified(&eng);
                gaps.push((
                    format!("{pname}, {wname} weights, {sname} speeds"),
                    norm_max,
                    gap,
                    eng.counters().events,
                ));
            }
        }
    }
    group.finish();

    println!("\nE23 certified optimality gap (same churn in every cell):");
    for (cell, norm_max, gap, events) in &gaps {
        println!(
            "  {cell:<44} max W/s {norm_max:>9.3}   certified gap {gap:>8.3}   ({events} events)"
        );
    }
}

criterion_group!(e23, hetero_grid);
criterion_main!(e23);

//! E19 — live-engine throughput: events/sec of the sequential engine
//! versus the sharded engine at increasing worker counts.
//!
//! Each iteration simulates the *same* online instance (n bins at target
//! load ρ = m/n with Poisson churn) for a fixed simulated horizon, so the
//! event counts per iteration are comparable; the reported wall time per
//! iteration therefore translates directly to events/sec.  The sharded
//! engine trades bounded staleness at slice boundaries for parallelism —
//! this bench quantifies what that buys.
//!
//! Two effects are visible:
//! * even at one worker thread the sharded engine is measurably faster
//!   per event than the sequential engine, because shards keep raw load
//!   vectors and observe at batch granularity instead of maintaining the
//!   full per-event `LoadTracker`;
//! * the thread sweep shows the parallel headroom — on a single-core host
//!   (such as a CI container) the 1/4/8-thread rows coincide, while on a
//!   multicore machine the per-shard slices fan out across cores.

use criterion::{criterion_group, criterion_main, Criterion};
use rls_core::{Config, RlsRule};
use rls_live::{LiveEngine, LiveParams, ShardedEngine};
use rls_rng::rng_from_seed;
use rls_workloads::ArrivalProcess;

// Large enough that each synchronization slice carries tens of thousands
// of events per shard — the regime the sharded engine is built for (at
// toy sizes the per-slice fork/join overhead dominates and the sequential
// engine wins).
const N: usize = 4096;
const PER_BIN: u64 = 64;
const HORIZON: f64 = 2.0;
const SLICE: f64 = 0.5;

fn params() -> LiveParams {
    LiveParams::balanced(
        ArrivalProcess::Poisson { rate_per_bin: 4.0 },
        N,
        N as u64 * PER_BIN,
    )
    .expect("bench parameters are valid")
}

fn initial() -> Config {
    Config::uniform(N, PER_BIN).expect("bench instance is valid")
}

fn live_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_throughput");
    group.sample_size(10);

    group.bench_function(format!("sequential_n{N}_m{}", N as u64 * PER_BIN), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut engine =
                LiveEngine::new(initial(), params(), RlsRule::paper()).expect("valid engine");
            engine.run_until(HORIZON, &mut rng_from_seed(seed), &mut ());
            engine.counters().events
        });
    });

    for (shards, threads) in [(8usize, 1usize), (8, 4), (8, 8)] {
        group.bench_function(format!("sharded_{shards}shards_{threads}threads"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut engine =
                    ShardedEngine::new(initial(), params(), RlsRule::paper(), shards, SLICE, seed)
                        .expect("valid engine");
                engine.run(HORIZON, 0.0, threads).counters.events
            });
        });
    }
    group.finish();
}

criterion_group!(benches, live_throughput);
criterion_main!(benches);

//! E4 / E5: move classification and the Destructive Majorization Lemma.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_cli::experiments::{run_experiment, ExperimentId, Scale};
use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::adversary::RandomDestructiveAdversary;
use rls_sim::{NoAdversary, RlsPolicy, Simulation, StopWhen};

fn figure1_classification(c: &mut Criterion) {
    // E4 is deterministic and tiny; bench the full table generation.
    c.bench_function("e4_figure1_move_classification", |b| {
        b.iter(|| run_experiment(ExperimentId::E4Figure1Moves, Scale::Quick, 1))
    });
}

fn dml_adversarial_runs(c: &mut Criterion) {
    // E5: one run with and one without a destructive adversary, over the
    // same horizon, so the relative slowdown shows up directly.
    let mut group = c.benchmark_group("e5_dml");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 16;
    let m = 128;
    let horizon = 4.0;
    group.bench_function(BenchmarkId::new("plain", "n16_m128"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run_with(
                &mut rng_from_seed(seed),
                StopWhen::never().with_max_time(horizon),
                &mut NoAdversary,
                &mut (),
            )
        });
    });
    group.bench_function(BenchmarkId::new("destructive_adversary", "n16_m128"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            let mut adversary = RandomDestructiveAdversary::new(1, 0.5, None);
            sim.run_with(
                &mut rng_from_seed(seed),
                StopWhen::never().with_max_time(horizon),
                &mut adversary,
                &mut (),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, figure1_classification, dml_adversarial_runs);
criterion_main!(benches);

//! E22 — rebalance policies × topologies on the online engine: events/sec
//! and steady-state gap for {rls, greedy-2, threshold-avg} on {complete,
//! torus, random-regular:8} under identical Poisson churn.
//!
//! Two questions, one grid:
//!
//! * **cost** — what does a richer per-ring decision (two candidate draws
//!   for greedy-2, a neighbour lookup on sparse topologies) do to raw
//!   event throughput?  The complete-graph RLS row is the pre-refactor
//!   hot path: the enum dispatch and the topology fast path must keep it
//!   within noise of the old hard-wired engine (E19/E20/E21 numbers).
//! * **quality** — what does the policy buy?  The steady-gap table
//!   printed after the timing rows shows the power-of-two-choices effect
//!   (greedy-2 below rls) and the blind-move penalty (threshold-avg
//!   above both), shrinking but persisting on sparse topologies.
//!
//! `RLS_BENCH_QUICK=1` trims the grid to a smoke run (seconds): the CI
//! quick-bench job uses it and uploads the JSON-lines records emitted via
//! `RLS_BENCH_JSON` (see `vendor/criterion`).

use criterion::{append_custom_record, criterion_group, criterion_main, Criterion};
use rls_core::{Config, RebalancePolicy};
use rls_graph::Topology;
use rls_live::{LiveEngine, LiveParams, SteadyState};
use rls_obs::Registry;
use rls_rng::rng_from_seed;
use rls_workloads::ArrivalProcess;

use criterion::quick_mode as quick;

/// (n, per-bin load, simulated horizon): n must stay a perfect square for
/// the torus rows.
fn shape() -> (usize, u64, f64) {
    if quick() {
        (256, 16, 0.5)
    } else {
        (4096, 64, 2.0)
    }
}

fn policies() -> Vec<(&'static str, RebalancePolicy)> {
    vec![
        ("rls", RebalancePolicy::rls()),
        ("greedy-2", RebalancePolicy::GreedyD { d: 2 }),
        ("threshold-avg", RebalancePolicy::ThresholdAvg),
    ]
}

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("complete", Topology::Complete),
        ("torus", Topology::Torus2D),
        ("rr8", Topology::RandomRegular { degree: 8 }),
    ]
}

fn engine(policy: RebalancePolicy, topology: Topology) -> LiveEngine {
    let (n, per_bin, _) = shape();
    let m = n as u64 * per_bin;
    let params = LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 4.0 }, n, m)
        .expect("bench parameters are valid");
    LiveEngine::with_policy(
        Config::uniform(n, per_bin).expect("bench instance is valid"),
        params,
        policy,
        topology,
        0xE22,
    )
    .expect("valid engine")
}

fn policy_topology_grid(c: &mut Criterion) {
    let (n, per_bin, horizon) = shape();
    let mut group = c.benchmark_group("policy_topology");
    group.sample_size(if quick() { 3 } else { 10 });

    // Timing rows: wall time per fixed simulated horizon = events/sec up
    // to the (printed) event count.
    let mut gaps: Vec<(String, f64, u64)> = Vec::new();
    for (pname, policy) in policies() {
        for (tname, topology) in topologies() {
            group.bench_function(
                format!("{pname}_{tname}_n{n}_m{}", n as u64 * per_bin),
                |b| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut eng = engine(policy, topology);
                        eng.run_until(horizon, &mut rng_from_seed(seed), &mut ());
                        eng.counters().events
                    });
                },
            );
            // Steady-state quality, measured once per cell outside the
            // timed loop (same seed across cells → identical churn law).
            // This pass carries the telemetry tap: its counters feed the
            // events/s and descent-depth records in BENCH_live.json.
            let registry = Registry::new();
            let mut eng = engine(policy, topology);
            eng.attach_metrics(&registry);
            let mut steady = SteadyState::new(horizon * 0.25);
            // detlint: allow(D002) benchmark wall-clock, never fed to an engine
            let started = std::time::Instant::now();
            eng.run_until(horizon, &mut rng_from_seed(7), &mut steady);
            let wall = started.elapsed().as_secs_f64();
            let summary = steady.finish(eng.time());
            let metrics = eng.metrics().expect("metrics attached above");
            let events = metrics.events.get() as f64;
            let cell = format!("policy_topology/{pname}_{tname}");
            append_custom_record(&format!("{cell}/events_per_sec"), events / wall.max(1e-9));
            append_custom_record(
                &format!("{cell}/mean_descent_depth"),
                metrics.descent_depth.snapshot().mean(),
            );
            gaps.push((
                format!("{pname} on {tname}"),
                summary.mean_gap,
                eng.counters().events,
            ));
        }
    }
    group.finish();

    println!("\nE22 steady-state gap (same churn in every cell):");
    for (cell, gap, events) in &gaps {
        println!("  {cell:<28} mean gap {gap:>8.3}   ({events} events)");
    }
}

criterion_group!(e22, policy_topology_grid);
criterion_main!(e22);

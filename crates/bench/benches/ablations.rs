//! Ablations for the design choices called out in DESIGN.md §5:
//!
//! * superposition scheduler vs the per-ball clock heap (same law, different
//!   constants),
//! * incremental `LoadTracker` bookkeeping vs rescanning the load vector,
//! * dynamic vs statically-chunked parallel Monte-Carlo scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_core::{Config, LoadTracker, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::clock::ClockEngine;
use rls_sim::parallel::{parallel_map, parallel_map_chunked};
use rls_sim::{RlsPolicy, Simulation, StopWhen};

fn scheduler_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 64;
    let m = 1024;
    group.bench_function("superposition_engine", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run(&mut rng_from_seed(seed), StopWhen::perfectly_balanced())
        });
    });
    group.bench_function("per_ball_clock_heap", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(seed));
            engine.run(&mut rng_from_seed(seed + 1), StopWhen::perfectly_balanced())
        });
    });
    group.finish();
}

fn bookkeeping_ablation(c: &mut Criterion) {
    // Checking "is perfectly balanced" after every move: incremental tracker
    // vs a full rescan of the load vector.
    let mut group = c.benchmark_group("ablation_configuration_bookkeeping");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [256usize, 1024] {
        // A fixed pseudo-random move trace over an unbalanced configuration
        // (most moves out of the heavy bin are RLS-legal, so the checks are
        // actually exercised).
        let start = Config::all_in_one_bin(n, 16 * n as u64).unwrap();
        let rule = RlsRule::paper();
        let trace: Vec<(usize, usize)> = {
            use rls_rng::RngExt;
            let mut rng = rng_from_seed(7);
            (0..4 * n)
                .map(|i| {
                    let from = if i % 4 == 0 { rng.next_index(n) } else { 0 };
                    (from, rng.next_index(n))
                })
                .filter(|&(from, to)| from != to)
                .collect()
        };
        group.bench_with_input(
            BenchmarkId::new("incremental_tracker", n),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut cfg = start.clone();
                    let mut tracker = LoadTracker::new(&cfg);
                    let mut balanced_checks = 0usize;
                    for &(from, to) in trace {
                        if cfg.load(from) == 0 || !rule.permits_loads(cfg.load(from), cfg.load(to))
                        {
                            continue;
                        }
                        let (lf, lt) = (cfg.load(from), cfg.load(to));
                        cfg.apply(rls_core::Move::new(from, to)).unwrap();
                        tracker.record_move(lf, lt);
                        balanced_checks += tracker.is_perfectly_balanced() as usize;
                    }
                    balanced_checks
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("full_rescan", n), &trace, |b, trace| {
            b.iter(|| {
                let mut cfg = start.clone();
                let mut balanced_checks = 0usize;
                for &(from, to) in trace {
                    if cfg.load(from) == 0 || !rule.permits_loads(cfg.load(from), cfg.load(to)) {
                        continue;
                    }
                    cfg.apply(rls_core::Move::new(from, to)).unwrap();
                    balanced_checks += cfg.is_perfectly_balanced() as usize;
                }
                balanced_checks
            });
        });
    }
    group.finish();
}

fn parallel_granularity_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_granularity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let trials = 32usize;
    let work = |i: usize| {
        let cfg = Config::all_in_one_bin(16, 256).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        sim.run(&mut rng_from_seed(i as u64), StopWhen::perfectly_balanced())
            .activations
    };
    group.bench_function("dynamic_claiming", |b| {
        b.iter(|| parallel_map(trials, 4, work))
    });
    group.bench_function("static_chunking", |b| {
        b.iter(|| parallel_map_chunked(trials, 4, work))
    });
    group.finish();
}

criterion_group!(
    benches,
    scheduler_ablation,
    bookkeeping_ablation,
    parallel_granularity_ablation
);
criterion_main!(benches);

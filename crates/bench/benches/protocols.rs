//! E12 / E13 / E14 / E17: protocol comparisons — RLS versus the CRS
//! pair-sampling protocol, the synchronous selfish protocols, threshold
//! balancing, and the strict RLS variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_protocols::crs_local_search::{CrsLocalSearch, CrsPlacement};
use rls_protocols::{RlsProtocol, SelfishDistributed, SelfishGlobal, ThresholdProtocol};
use rls_rng::rng_from_seed;
use rls_workloads::Workload;

fn versus_crs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_vs_crs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 32;
    let m = 32u64;
    group.bench_function(BenchmarkId::new("rls_from_two_choices", n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rng_from_seed(seed);
            let start = Workload::TwoChoices.generate(n, m, &mut rng).unwrap();
            RlsProtocol::paper().run(&start, 0.0, &mut rng)
        });
    });
    group.bench_function(BenchmarkId::new("crs_pair_sampling", n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rng_from_seed(seed);
            CrsLocalSearch::new(CrsPlacement::TwoChoices, 200_000).run(n, m, 0.0, &mut rng)
        });
    });
    group.finish();
}

fn versus_selfish(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_vs_selfish");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 32;
    for factor in [8u64, 64] {
        let m = factor * n as u64;
        group.bench_function(BenchmarkId::new("rls", format!("m_{factor}n")), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = rng_from_seed(seed);
                let start = Workload::UniformRandom.generate(n, m, &mut rng).unwrap();
                RlsProtocol::paper().run(&start, 1.0, &mut rng)
            });
        });
        group.bench_function(
            BenchmarkId::new("selfish_global", format!("m_{factor}n")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = rng_from_seed(seed);
                    let start = Workload::UniformRandom.generate(n, m, &mut rng).unwrap();
                    SelfishGlobal::new(5_000).run(&start, 1.0, &mut rng)
                });
            },
        );
        group.bench_function(
            BenchmarkId::new("selfish_distributed", format!("m_{factor}n")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = rng_from_seed(seed);
                    let start = Workload::UniformRandom.generate(n, m, &mut rng).unwrap();
                    SelfishDistributed::new(5_000).run(&start, 1.0, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn versus_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_vs_threshold");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 32;
    let m = 8 * n as u64;
    let coarse = 4.0 * (n as f64).ln();
    group.bench_function("rls_to_coarse_balance", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rng_from_seed(seed);
            let start = Workload::AllInOneBin.generate(n, m, &mut rng).unwrap();
            RlsProtocol::paper().run(&start, coarse, &mut rng)
        });
    });
    group.bench_function("threshold_to_coarse_balance", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rng_from_seed(seed);
            let start = Workload::AllInOneBin.generate(n, m, &mut rng).unwrap();
            ThresholdProtocol::average_threshold(2_000).run(&start, coarse, &mut rng)
        });
    });
    group.finish();
}

fn variant_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_variant_equivalence");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 32;
    let m = 8 * n as u64;
    for (name, proto) in [
        ("geq", RlsProtocol::paper()),
        ("strict", RlsProtocol::strict()),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = rng_from_seed(seed);
                let start = Workload::AllInOneBin.generate(n, m, &mut rng).unwrap();
                proto.run(&start, 0.0, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    versus_crs,
    versus_selfish,
    versus_threshold,
    variant_equivalence
);
criterion_main!(benches);

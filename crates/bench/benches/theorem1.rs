//! E1 / E2 / E11: balancing-time scaling (Theorem 1 and the comparison with
//! the old bound of [11]).
//!
//! Each benchmark iteration is one full RLS run to perfect balance; the
//! reported wall-clock time is proportional to the number of activations,
//! i.e. to `m · E[T]`, so the group output directly exhibits the
//! `ln n + n²/m` shape across the sweep (who wins, by what factor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rls_bench::{balance_once, scaling_sweep};
use rls_core::Config;
use rls_rng::rng_from_seed;
use rls_workloads::Workload;

fn theorem1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_theorem1_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (n, m) in scaling_sweep() {
        let initial = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(
            BenchmarkId::new("all_in_one_bin", format!("n{n}_m{m}")),
            &initial,
            |b, initial| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    balance_once(initial, &mut rng_from_seed(seed))
                });
            },
        );
    }
    group.finish();
}

fn theorem1_whp_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_whp_tail");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // Uniform-random starts: the typical (rather than worst) case for the
    // w.h.p. statement.
    for (n, m) in [(64usize, 512u64), (128, 1024)] {
        group.bench_with_input(
            BenchmarkId::new("uniform_random", format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = rng_from_seed(seed);
                    let initial = Workload::UniformRandom.generate(n, m, &mut rng).unwrap();
                    balance_once(&initial, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn prior_bound_regime(c: &mut Criterion) {
    // E11: m = n² so the n²/m term vanishes; time should grow like ln n.
    let mut group = c.benchmark_group("e11_prior_bound_m_equals_n_squared");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [16usize, 32, 64] {
        let m = (n * n) as u64;
        let initial = Config::all_in_one_bin(n, m).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &initial, |b, initial| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                balance_once(initial, &mut rng_from_seed(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    theorem1_scaling,
    theorem1_whp_tail,
    prior_bound_regime
);
criterion_main!(benches);

//! E20 — billion-ball scale: the Fenwick-indexed engine past the old
//! `u32` ball cap, and its events/sec against the historical Vec-sampled
//! engine at `m = 10⁷`.
//!
//! Two claims are measured:
//!
//! * **memory model** — `billion_*` constructs and steps an instance with
//!   `m = 2³² + 2¹² > u32::MAX` balls.  The pre-refactor engines stored a
//!   `balls: Vec<u32>` (4 bytes per ball ⇒ ≥ 16 GiB here, and a hard
//!   constructor error); the Fenwick engine holds `O(n)` state, so the
//!   instance costs a few hundred KiB and the bench runs at full speed.
//! * **throughput parity** — at `m = 10⁷` (comfortably inside the old
//!   cap) `fenwick_*` must be no slower per event than `vec_*`, a verbatim
//!   replica of the old uniform-slot sampler.  The Fenwick descent is
//!   `O(log n)` versus the Vec's `O(1)` lookup, but the Vec engine touches
//!   40 MB of slot memory (cache-hostile at random indices) while the tree
//!   is a few KiB, so the two trade instructions for locality.
//!
//! Each iteration steps a fixed event count from the same worst-case
//! start, so wall time per iteration translates directly to events/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use rls_core::{Config, LoadTracker, Move, RlsRule};
use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{rng_from_seed, Rng64, RngExt};
use rls_sim::{RlsPolicy, Simulation};

/// Events per bench iteration.
const EVENTS: u64 = 200_000;
const N: usize = 4096;
/// Past the old cap: 2³² + 4096 balls.
const M_BILLION: u64 = u32::MAX as u64 + 1 + N as u64;
/// Inside the old cap, for the head-to-head with the Vec sampler.
const M_TEN_MILLION: u64 = 10_000_000;

/// Verbatim replica of the pre-Fenwick superposition engine: uniform-slot
/// sampling over a `balls: Vec<u32>` map (O(m) memory, `u32::MAX` cap),
/// with the same per-event [`LoadTracker`] bookkeeping the real engine
/// always performed.  A tracker-less twin lives in
/// `crates/sim/tests/cross_validation.rs` for the KS law check — keep the
/// sampling logic of the two in sync.
struct VecEngine {
    cfg: Config,
    balls: Vec<u32>,
    tracker: LoadTracker,
    rule: RlsRule,
    time: f64,
    waiting_time: Exponential,
}

impl VecEngine {
    fn new(initial: Config, rule: RlsRule) -> Self {
        let mut balls = Vec::with_capacity(initial.m() as usize);
        for (bin, &load) in initial.loads().iter().enumerate() {
            for _ in 0..load {
                balls.push(bin as u32);
            }
        }
        let tracker = LoadTracker::new(&initial);
        let waiting_time = Exponential::new(initial.m() as f64).expect("m ≥ 1");
        Self {
            cfg: initial,
            balls,
            tracker,
            rule,
            time: 0.0,
            waiting_time,
        }
    }

    fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) {
        self.time += self.waiting_time.sample(rng);
        let ball = rng.next_index(self.balls.len());
        let source = self.balls[ball] as usize;
        let dest = rng.next_index(self.cfg.n());
        if source != dest
            && self
                .rule
                .permits_loads(self.cfg.load(source), self.cfg.load(dest))
        {
            let (lf, lt) = (self.cfg.load(source), self.cfg.load(dest));
            self.cfg
                .apply(Move::new(source, dest))
                .expect("permitted move applies");
            self.tracker.record_move(lf, lt);
            self.balls[ball] = dest as u32;
        }
    }
}

fn worst_case(m: u64) -> Config {
    Config::all_in_one_bin(N, m).expect("bench instance is valid")
}

fn billion_ball_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("billion_ball_scale");
    group.sample_size(10);

    // O(n) memory: constructing + stepping 2³²⁺ balls, impossible for the
    // old Vec engine on any reasonable machine.  Construction (O(n)) stays
    // outside the timed loop in all three benches so the rows compare pure
    // per-event cost; iterations continue the same trajectory, which only
    // drives the instance closer to balance.
    group.bench_function(format!("billion_fenwick_n{N}_m{M_BILLION}"), |b| {
        let mut sim = Simulation::new(worst_case(M_BILLION), RlsPolicy::new(RlsRule::paper()))
            .expect("no ball cap");
        let mut rng = rng_from_seed(20);
        b.iter(|| {
            for _ in 0..EVENTS {
                sim.step(&mut rng);
            }
            sim.migrations()
        });
    });

    // Throughput parity at m = 10⁷: Fenwick must be no slower per event
    // than the historical Vec sampler.
    group.bench_function(format!("fenwick_n{N}_m{M_TEN_MILLION}"), |b| {
        let mut sim = Simulation::new(worst_case(M_TEN_MILLION), RlsPolicy::new(RlsRule::paper()))
            .expect("valid instance");
        let mut rng = rng_from_seed(21);
        b.iter(|| {
            for _ in 0..EVENTS {
                sim.step(&mut rng);
            }
            sim.migrations()
        });
    });
    group.bench_function(format!("vec_n{N}_m{M_TEN_MILLION}"), |b| {
        let mut sim = VecEngine::new(worst_case(M_TEN_MILLION), RlsRule::paper());
        let mut rng = rng_from_seed(21);
        b.iter(|| {
            for _ in 0..EVENTS {
                sim.step(&mut rng);
            }
            sim.time
        });
    });

    group.finish();
}

criterion_group!(benches, billion_ball_scale);
criterion_main!(benches);

//! E21 — serving throughput: requests/sec of the HTTP layer end to end,
//! worker-pool vs event-loop frontend.
//!
//! Each iteration boots nothing: one server per frontend (n bins at
//! target load, the balanced auto-rebalance policy) lives for the whole
//! group, and every iteration pushes a fixed number of `POST /v1/arrive`
//! requests through real loopback sockets with the built-in closed-loop
//! generator.  Wall time per iteration over the fixed request count is
//! therefore the serving throughput, with all of HTTP parsing, the engine
//! command path and the RLS rebalance work on the measured path.
//!
//! Two effects are visible:
//! * pipeline depth 1 prices the full per-request round trip (client
//!   syscalls, frontend wake-up, engine hop) — latency-bound on loopback;
//! * pipeline depth 16 amortizes those hops (the server answers a
//!   pipelined burst with one engine batch and one write), which is where
//!   the ≥100k requests/s regime lives even on a single core.
//!
//! **Paired sampling.**  The frontends are *interleaved sample by sample*
//! (worker-pool, event-loop, worker-pool, …) rather than measured in two
//! separate blocks: on a shared box the clock drifts — frequency scaling,
//! background load — and a block design silently charges all of the drift
//! to whichever frontend ran second.  Adjacent samples see the same box,
//! so the per-round ratio is drift-free; the recorded
//! `event_over_worker_speedup` row is the median of those per-round
//! ratios.

use std::time::{Duration, Instant};

use criterion::{append_custom_record, criterion_group, criterion_main, Criterion};
use rls_core::{Config, RlsRule};
use rls_live::{LiveEngine, LiveParams};
use rls_obs::Registry;
use rls_serve::{
    drive, serve, BenchOptions, DriveMode, Frontend, ServeCore, ServePolicy, ServerConfig,
};
use rls_workloads::ArrivalProcess;

const N: usize = 64;
const PER_BIN: u64 = 8;
const CONNECTIONS: usize = 8;
const SAMPLES: usize = 10;

/// `RLS_BENCH_QUICK=1` trims the request count so the CI smoke job runs
/// in seconds while exercising the identical serving path.
fn requests_per_iter() -> u64 {
    if criterion::quick_mode() {
        2_000
    } else {
        10_000
    }
}

fn boot(registry: &Registry, frontend: Frontend) -> rls_serve::HttpServer {
    let m = N as u64 * PER_BIN;
    let initial = Config::uniform(N, PER_BIN).expect("bench instance is valid");
    let params = LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 1.0 }, N, m)
        .expect("bench parameters are valid");
    let engine = LiveEngine::new(initial, params, RlsRule::paper()).expect("valid engine");
    // The balanced default: rings at rate m vs arrivals at rate λ = n.
    let mut core = ServeCore::new(
        engine,
        0xE21,
        0.0,
        ServePolicy {
            rings_per_arrival: m as f64 / N as f64,
        },
    );
    // The telemetry tap rides along for free (write-only atomics off the
    // measured path): its counters feed the BENCH_serve.json records.
    core.attach_metrics(registry);
    serve(
        core,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: CONNECTIONS,
            frontend,
        },
    )
    .expect("ephemeral server boots")
}

/// One timed drive of `requests` through the server at `addr`.
fn sample(addr: std::net::SocketAddr, pipeline: usize, requests: u64) -> Duration {
    // detlint: allow(D002) benchmark wall-clock, never fed to an engine
    let start = Instant::now();
    let report = drive(
        addr,
        &BenchOptions {
            connections: CONNECTIONS,
            duration: Duration::from_secs(60),
            max_requests: Some(requests),
            mode: DriveMode::Closed,
            pipeline,
            depart_fraction: 0.5,
            ..BenchOptions::default()
        },
    )
    .expect("generator runs");
    assert!(report.errors == 0, "transport errors: {}", report.errors);
    start.elapsed()
}

fn human_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn serving_throughput(_c: &mut Criterion) {
    let requests = requests_per_iter();
    // Both frontends live for the whole group: same instance parameters,
    // same generator, directly comparable rows in BENCH_serve.json.
    let frontends = [Frontend::WorkerPool, Frontend::EventLoop];
    let booted: Vec<_> = frontends
        .iter()
        .map(|&f| {
            let registry = Registry::new();
            let server = boot(&registry, f);
            (f, server)
        })
        .collect();

    for pipeline in [1usize, 16] {
        // One untimed warm-up drive per frontend, then paired rounds.
        for (_, server) in &booted {
            sample(server.addr(), pipeline, requests);
        }
        let mut times: [Vec<Duration>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..SAMPLES {
            for (i, (_, server)) in booted.iter().enumerate() {
                times[i].push(sample(server.addr(), pipeline, requests));
            }
        }
        for (i, (frontend, _)) in booted.iter().enumerate() {
            let mean = times[i].iter().sum::<Duration>() / times[i].len() as u32;
            let rps = requests as f64 / mean.as_secs_f64();
            let name = format!(
                "serving_throughput/closed_loop_{frontend}_{CONNECTIONS}conns_pipeline{pipeline}_{requests}reqs"
            );
            println!(
                "{name:<78} mean {:>9.2} ms ({} samples, {:.0} req/s)",
                human_ms(mean),
                times[i].len(),
                rps,
            );
            append_custom_record(&format!("{name}/mean_ms"), human_ms(mean));
            append_custom_record(&format!("{name}/requests_per_sec"), rps);
        }
        // Median of per-round ratios: each round's two samples are
        // adjacent in time, so box drift cancels instead of biasing one
        // frontend.
        let mut ratios: Vec<f64> = times[0]
            .iter()
            .zip(&times[1])
            .map(|(wp, el)| wp.as_secs_f64() / el.as_secs_f64())
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let median = ratios[ratios.len() / 2];
        let name = format!(
            "serving_throughput/closed_loop_{CONNECTIONS}conns_pipeline{pipeline}_{requests}reqs/event_over_worker_speedup"
        );
        println!("{name:<78} median {median:>7.2}x");
        append_custom_record(&name, median);
    }
    drop(booted);
}

criterion_group!(benches, serving_throughput);
criterion_main!(benches);

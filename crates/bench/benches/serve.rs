//! E21 — serving throughput: requests/sec of the HTTP layer end to end.
//!
//! Each iteration boots nothing: one server (n bins at target load, the
//! balanced auto-rebalance policy) lives for the whole group, and every
//! iteration pushes a fixed number of `POST /v1/arrive` requests through
//! real loopback sockets with the built-in closed-loop generator.  Wall
//! time per iteration over the fixed request count is therefore the
//! serving throughput, with all of HTTP parsing, the engine command
//! channel and the RLS rebalance work on the measured path.
//!
//! Two effects are visible:
//! * pipeline depth 1 prices the full per-request round trip (client
//!   syscalls, worker wake-up, engine hop) — latency-bound on loopback;
//! * pipeline depth 16 amortizes those hops (the server answers a
//!   pipelined burst with one engine batch and one write), which is where
//!   the ≥100k requests/s regime lives even on a single core.

use std::time::Duration;

use criterion::{append_custom_record, criterion_group, criterion_main, Criterion};
use rls_core::{Config, RlsRule};
use rls_live::{LiveEngine, LiveParams};
use rls_obs::Registry;
use rls_serve::{drive, serve, BenchOptions, DriveMode, ServeCore, ServePolicy, ServerConfig};
use rls_workloads::ArrivalProcess;

const N: usize = 64;
const PER_BIN: u64 = 8;
const CONNECTIONS: usize = 4;

/// `RLS_BENCH_QUICK=1` trims the request count so the CI smoke job runs
/// in seconds while exercising the identical serving path.
fn requests_per_iter() -> u64 {
    if criterion::quick_mode() {
        1_000
    } else {
        10_000
    }
}

fn boot(registry: &Registry) -> rls_serve::HttpServer {
    let m = N as u64 * PER_BIN;
    let initial = Config::uniform(N, PER_BIN).expect("bench instance is valid");
    let params = LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 1.0 }, N, m)
        .expect("bench parameters are valid");
    let engine = LiveEngine::new(initial, params, RlsRule::paper()).expect("valid engine");
    // The balanced default: rings at rate m vs arrivals at rate λ = n.
    let mut core = ServeCore::new(
        engine,
        0xE21,
        0.0,
        ServePolicy {
            rings_per_arrival: m as f64 / N as f64,
        },
    );
    // The telemetry tap rides along for free (write-only atomics off the
    // measured path): its counters feed the BENCH_serve.json records.
    core.attach_metrics(registry);
    serve(
        core,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: CONNECTIONS,
        },
    )
    .expect("ephemeral server boots")
}

fn serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);

    let registry = Registry::new();
    let server = boot(&registry);
    let addr = server.addr();
    let requests = requests_per_iter();
    for pipeline in [1usize, 16] {
        let name = format!("closed_loop_{CONNECTIONS}conns_pipeline{pipeline}_{requests}reqs");
        let mut last_rps = 0.0;
        group.bench_function(&name, |b| {
            b.iter(|| {
                let report = drive(
                    addr,
                    &BenchOptions {
                        connections: CONNECTIONS,
                        duration: Duration::from_secs(60),
                        max_requests: Some(requests),
                        mode: DriveMode::Closed,
                        pipeline,
                        depart_fraction: 0.5,
                        ..BenchOptions::default()
                    },
                )
                .expect("generator runs");
                assert!(report.errors == 0, "transport errors: {}", report.errors);
                last_rps = report.rps;
                (report.requests, report.p99_us)
            });
        });
        append_custom_record(
            &format!("serving_throughput/{name}/requests_per_sec"),
            last_rps,
        );
    }
    drop(server);
    group.finish();
}

criterion_group!(benches, serving_throughput);
criterion_main!(benches);

//! # rls-bench — shared helpers for the Criterion benchmark harness
//!
//! Each bench target under `benches/` regenerates one family of experiments
//! from EXPERIMENTS.md (see DESIGN.md §4 for the mapping).  The helpers here
//! keep Criterion configuration consistent across targets: small sample
//! counts and short measurement windows, because each "iteration" is a full
//! stochastic simulation rather than a nanosecond-scale kernel.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rls_core::{Config, RlsRule};
use rls_rng::DefaultRng;
use rls_sim::{RlsPolicy, RunOutcome, Simulation, StopWhen};

/// Run one RLS trajectory from `initial` to perfect balance.
pub fn balance_once(initial: &Config, rng: &mut DefaultRng) -> RunOutcome {
    let mut sim = Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper()))
        .expect("bench instances always contain balls");
    sim.run(rng, StopWhen::perfectly_balanced())
}

/// The (n, m) sweep shared by the scaling benches: small enough that the
/// whole suite finishes in minutes, large enough that the Theorem-1 shape is
/// visible in the reported times.
pub fn scaling_sweep() -> Vec<(usize, u64)> {
    vec![(32, 32), (64, 64), (64, 512), (128, 1024)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn balance_once_reaches_balance() {
        let initial = Config::all_in_one_bin(8, 40).unwrap();
        let outcome = balance_once(&initial, &mut rng_from_seed(1));
        assert!(outcome.reached_goal);
    }

    #[test]
    fn sweep_is_nonempty_and_sorted() {
        let sweep = scaling_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

//! A small parallel-map utility for embarrassingly parallel Monte-Carlo
//! trials.
//!
//! The trials of an experiment are independent (each gets its own RNG stream
//! derived from the master seed), so the only parallel structure needed is a
//! fork-join map over trial indices.  We build it on `std::thread::scope`
//! plus an atomic work counter: workers repeatedly claim the next index,
//! compute, and collect `(index, result)` pairs that are merged in order at
//! join time.  Dynamic claiming (rather than static chunking) keeps all
//! cores busy even though balancing times vary wildly between trials —
//! exactly the load-imbalance phenomenon the paper studies, showing up in
//! our own harness.  The `parallel_granularity` ablation bench compares this
//! against static chunking.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(i)` for every `i in 0..count` on `threads` worker threads and
/// collect the results in index order.
///
/// `threads == 0` or `threads == 1`, or a trivially small `count`, falls
/// back to a sequential loop (no thread setup cost).
///
/// Panics in the closure propagate: the scope joins all workers and
/// re-raises, so a failing trial cannot be silently dropped.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    if threads <= 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let threads = threads.min(count);
    let next = AtomicUsize::new(0);
    let f = &f;

    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        // ORDERING: relaxed — a work-stealing index; each
                        // task is claimed exactly once by atomicity alone.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => pairs.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    into_index_order(count, pairs)
}

/// Run `f(i)` for every `i in 0..count` with static contiguous chunking
/// instead of dynamic claiming.  Kept for the scheduler-granularity ablation
/// (E-ablation in DESIGN.md §5); [`parallel_map`] is the default.
pub fn parallel_map_chunked<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    if threads <= 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let threads = threads.min(count);
    let chunk = count.div_ceil(threads);
    let f = &f;

    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(count);
                    (start..end).map(|i| (i, f(i))).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => pairs.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    into_index_order(count, pairs)
}

/// Reassemble worker-local `(index, value)` pairs into index order.
fn into_index_order<T>(count: usize, mut pairs: Vec<(usize, T)>) -> Vec<T> {
    debug_assert_eq!(pairs.len(), count, "every index computed exactly once");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Number of worker threads to use by default: the available parallelism,
/// capped so laptop-scale runs stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let v: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn sequential_fallback_matches() {
        let seq: Vec<usize> = parallel_map(10, 1, |i| i * i);
        assert_eq!(seq, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_are_in_order() {
        let v: Vec<usize> = parallel_map(200, 4, |i| i * 3);
        assert_eq!(v, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_results_are_in_order() {
        let v: Vec<usize> = parallel_map_chunked(200, 4, |i| i + 7);
        assert_eq!(v, (0..200).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let v: Vec<usize> = parallel_map(3, 64, |i| i);
        assert_eq!(v, vec![0, 1, 2]);
        let w: Vec<usize> = parallel_map_chunked(3, 64, |i| i);
        assert_eq!(w, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_is_completed() {
        // Simulate wildly varying per-item cost; all results must be present.
        let v: Vec<u64> = parallel_map(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 % 7) * 10_000 {
                acc = acc.wrapping_add(k);
            }
            acc.wrapping_add(i as u64)
        });
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(16, 4, |i| {
                if i == 7 {
                    panic!("trial failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 16);
    }
}

//! A small parallel-map utility for embarrassingly parallel Monte-Carlo
//! trials.
//!
//! The trials of an experiment are independent (each gets its own RNG stream
//! derived from the master seed), so the only parallel structure needed is a
//! fork-join map over trial indices.  We build it on `crossbeam::scope` plus
//! an atomic work counter: workers repeatedly claim the next index, compute,
//! and write the result into its slot.  Dynamic claiming (rather than static
//! chunking) keeps all cores busy even though balancing times vary wildly
//! between trials — exactly the load-imbalance phenomenon the paper studies,
//! showing up in our own harness.  The `parallel_granularity` ablation bench
//! compares this against static chunking.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Run `f(i)` for every `i in 0..count` on `threads` worker threads and
/// collect the results in index order.
///
/// `threads == 0` or `threads == 1`, or a trivially small `count`, falls
/// back to a sequential loop (no thread setup cost).
///
/// Panics in the closure propagate: crossbeam's scope joins all workers and
/// re-raises, so a failing trial cannot be silently dropped.
pub fn parallel_map<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    if threads <= 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let threads = threads.min(count);

    // Pre-size the result buffer with None slots guarded by a mutex each;
    // contention is negligible because each slot is written exactly once.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = f(i);
                *slots[i].lock() = Some(value);
            });
        }
    })
    .expect("a Monte-Carlo worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot written exactly once"))
        .collect()
}

/// Run `f(i)` for every `i in 0..count` with static contiguous chunking
/// instead of dynamic claiming.  Kept for the scheduler-granularity ablation
/// (E-ablation in DESIGN.md §5); [`parallel_map`] is the default.
pub fn parallel_map_chunked<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    if threads <= 1 || count == 1 {
        return (0..count).map(f).collect();
    }
    let threads = threads.min(count);
    let chunk = count.div_ceil(threads);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let f = &f;
            scope.spawn(move |_| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(count);
                for i in start..end {
                    *slots[i].lock() = Some(f(i));
                }
            });
        }
    })
    .expect("a Monte-Carlo worker panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot written exactly once"))
        .collect()
}

/// Number of worker threads to use by default: the available parallelism,
/// capped so laptop-scale runs stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let v: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn sequential_fallback_matches() {
        let seq: Vec<usize> = parallel_map(10, 1, |i| i * i);
        assert_eq!(seq, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_are_in_order() {
        let v: Vec<usize> = parallel_map(200, 4, |i| i * 3);
        assert_eq!(v, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_results_are_in_order() {
        let v: Vec<usize> = parallel_map_chunked(200, 4, |i| i + 7);
        assert_eq!(v, (0..200).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let v: Vec<usize> = parallel_map(3, 64, |i| i);
        assert_eq!(v, vec![0, 1, 2]);
        let w: Vec<usize> = parallel_map_chunked(3, 64, |i| i);
        assert_eq!(w, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_is_completed() {
        // Simulate wildly varying per-item cost; all results must be present.
        let v: Vec<u64> = parallel_map(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 % 7) * 10_000 {
                acc = acc.wrapping_add(k);
            }
            acc.wrapping_add(i as u64)
        });
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 16);
    }
}

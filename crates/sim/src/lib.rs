//! # rls-sim — continuous-time simulation of sequential-activation protocols
//!
//! The paper's process is a continuous-time Markov chain: each of the `m`
//! balls carries an independent exponential clock of rate 1, and on each
//! ring the ball samples a uniform destination bin and applies the RLS rule.
//! This crate provides everything needed to *measure* that process:
//!
//! * [`Simulation`] — the superposition engine: because the minimum of `m`
//!   independent rate-1 exponential clocks is an exponential of rate `m` and
//!   the ringing ball is uniform, one event costs O(1) regardless of `m`.
//! * [`clock::ClockEngine`] — the literal per-ball clock implementation
//!   (binary heap of ring times).  Same law, used to cross-validate the
//!   superposition engine and as the baseline of the scheduler ablation.
//! * [`Adversary`] implementations — the destructive-move adversaries of
//!   Lemma 2, used by the DML experiments.
//! * [`observer`] — trajectory recorders, phase trackers and move counters.
//! * [`stopping`] — stopping conditions (perfect balance, `x`-balance,
//!   event/time budgets).
//! * [`montecarlo`] — sequential and multi-threaded Monte-Carlo drivers that
//!   aggregate stopping times over many independent trials.
//! * [`stats`] — summary statistics, quantiles, empirical CDFs, linear
//!   regression for scaling fits and a stochastic-dominance test.
//!
//! ## Example
//!
//! ```
//! use rls_core::{Config, RlsRule};
//! use rls_sim::{RlsPolicy, Simulation, StopWhen};
//! use rls_rng::rng_from_seed;
//!
//! let initial = Config::all_in_one_bin(16, 160).unwrap();
//! let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
//! let outcome = sim.run(&mut rng_from_seed(7), StopWhen::perfectly_balanced());
//! assert!(outcome.reached_goal);
//! assert!(sim.config().is_perfectly_balanced());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod clock;
pub mod coupling;
pub mod engine;
pub mod events;
pub mod montecarlo;
pub mod observer;
pub mod parallel;
pub mod stats;
pub mod stopping;

pub use adversary::{Adversary, NoAdversary, PileUpAdversary, RandomDestructiveAdversary};
pub use engine::{Policy, RlsPolicy, RunOutcome, SimError, Simulation};
pub use events::Event;
pub use montecarlo::{MonteCarlo, TrialResult};
pub use observer::{MoveCounter, Observer, PhaseTracker, TimeSeries};
pub use stats::Summary;
pub use stopping::StopWhen;

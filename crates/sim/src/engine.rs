//! The superposition simulation engine.
//!
//! The process of Section 3 assigns each ball an independent `Exp(1)` clock.
//! By the superposition property of Poisson processes the time to the *next*
//! ring anywhere in the system is `Exp(m)` and the ringing ball is uniform
//! over the `m` balls.  Balls are exchangeable, so "a uniform ball" is the
//! same law as "a bin with probability `load/m`" — which a Fenwick-indexed
//! load vector ([`LoadIndex`]) answers in `O(log n)` with `O(n)` memory.
//! The engine therefore never materializes per-ball state: `m` is a plain
//! `u64` with no `u32::MAX` cap, and a billion-ball instance costs the same
//! memory as a thousand-ball one.  This is an exact simulation of the
//! continuous-time law, not a discretization or an approximation: the
//! sampled bin has exactly the distribution of the activated ball's bin.
//!
//! The engine is generic over a [`Policy`] (which move rule to apply) and an
//! [`Adversary`] (the destructive-move injector used by
//! the Lemma 2 experiments).  Progress quantities (discrepancy, overloaded
//! balls, Phase-2 potential) are maintained incrementally through
//! [`LoadTracker`], so checking a stopping condition after every event is
//! O(1) too.

use rls_core::{Config, LoadIndex, LoadTracker, Move, RlsRule};
use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{Rng64, RngExt};

use crate::adversary::{Adversary, NoAdversary};
use crate::events::Event;
use crate::observer::Observer;
use crate::stopping::StopWhen;

/// A decision rule for sequential-activation protocols: given the current
/// loads, should the activated ball migrate from `source` to `dest`?
pub trait Policy {
    /// Decide the migration.  `source != dest` is guaranteed by the engine.
    fn permits(&self, loads: &[u64], source: usize, dest: usize) -> bool;

    /// A short name for experiment tables.
    fn name(&self) -> &'static str {
        "policy"
    }
}

/// The RLS rule as an engine policy (either variant).
#[derive(Debug, Clone, Copy)]
pub struct RlsPolicy {
    rule: RlsRule,
}

impl RlsPolicy {
    /// Wrap an RLS rule.
    pub fn new(rule: RlsRule) -> Self {
        Self { rule }
    }

    /// The underlying rule.
    pub fn rule(&self) -> RlsRule {
        self.rule
    }
}

impl Policy for RlsPolicy {
    #[inline]
    fn permits(&self, loads: &[u64], source: usize, dest: usize) -> bool {
        self.rule.permits_loads(loads[source], loads[dest])
    }

    fn name(&self) -> &'static str {
        self.rule.variant().name()
    }
}

/// Outcome of a [`Simulation::run`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Simulation time when the run stopped.
    pub time: f64,
    /// Total number of ball activations processed.
    pub activations: u64,
    /// Number of activations that resulted in a migration.
    pub migrations: u64,
    /// Whether the run stopped because the goal condition was met (as
    /// opposed to exhausting an event or time budget).
    pub reached_goal: bool,
    /// Discrepancy at the stopping instant.
    pub final_discrepancy: f64,
}

/// Continuous-time simulation state for a sequential-activation protocol.
#[derive(Debug, Clone)]
pub struct Simulation<P: Policy> {
    cfg: Config,
    index: LoadIndex,
    tracker: LoadTracker,
    policy: P,
    time: f64,
    activations: u64,
    migrations: u64,
    waiting_time: Exponential,
}

/// Errors from constructing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The process needs at least one ball to have any events.
    NoBalls,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::NoBalls => write!(f, "simulation requires at least one ball"),
        }
    }
}

impl std::error::Error for SimError {}

impl<P: Policy> Simulation<P> {
    /// Create a simulation starting from `initial` under the given policy.
    ///
    /// Any `m ≥ 1` up to `u64::MAX` is accepted: the engine holds `O(n)`
    /// state regardless of the ball count.
    pub fn new(initial: Config, policy: P) -> Result<Self, SimError> {
        let m = initial.m();
        if m == 0 {
            return Err(SimError::NoBalls);
        }
        let index = LoadIndex::new(&initial);
        let tracker = LoadTracker::new(&initial);
        let waiting_time =
            Exponential::new(m as f64).expect("m ≥ 1 gives a valid exponential rate");
        Ok(Self {
            cfg: initial,
            index,
            tracker,
            policy,
            time: 0.0,
            activations: 0,
            migrations: 0,
            waiting_time,
        })
    }

    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Incrementally maintained summary of the configuration.
    pub fn tracker(&self) -> &LoadTracker {
        &self.tracker
    }

    /// The Fenwick index over the loads (exchangeable-ball sampling).
    pub fn index(&self) -> &LoadIndex {
        &self.index
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of activations processed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The policy driving this simulation.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Advance by exactly one activation and return the event.
    pub fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> Event {
        let n = self.cfg.n();
        let dt = self.waiting_time.sample(rng);
        self.time += dt;
        self.activations += 1;

        // The activated ball is uniform over m balls; exchangeability makes
        // that identical in law to "bin i with probability load_i / m".
        let rank = rng.next_below(self.index.total());
        let source = self.index.bin_at(rank);
        let dest = rng.next_index(n);

        let mut moved = false;
        if source != dest && self.policy.permits(self.cfg.loads(), source, dest) {
            let (lf, lt) = (self.cfg.load(source), self.cfg.load(dest));
            self.cfg
                .apply(Move::new(source, dest))
                .expect("permitted move applies");
            self.tracker.record_move(lf, lt);
            self.index.record_move(source, dest);
            self.migrations += 1;
            moved = true;
        }

        Event::activation(self.time, source, dest, moved, self.activations)
    }

    /// Apply an externally chosen (typically destructive) move, relocating
    /// one arbitrary ball from `from` to `to`.  Used by adversaries.
    ///
    /// Returns `false` (and changes nothing) if the source bin is empty or
    /// an index is out of range.
    pub fn force_move(&mut self, from: usize, to: usize) -> bool {
        if from == to || from >= self.cfg.n() || to >= self.cfg.n() || self.cfg.load(from) == 0 {
            return false;
        }
        let (lf, lt) = (self.cfg.load(from), self.cfg.load(to));
        self.cfg
            .apply(Move::new(from, to))
            .expect("validated move applies");
        self.tracker.record_move(lf, lt);
        self.index.record_move(from, to);
        true
    }

    /// Run until the stopping condition triggers.  Convenience wrapper
    /// around [`run_with`](Self::run_with) with no adversary and no
    /// observer.
    pub fn run<R: Rng64 + ?Sized>(&mut self, rng: &mut R, stop: StopWhen) -> RunOutcome {
        self.run_with(rng, stop, &mut NoAdversary, &mut ())
    }

    /// Run until the stopping condition triggers, consulting the adversary
    /// after every event and reporting every event to the observer.
    pub fn run_with<R, A, O>(
        &mut self,
        rng: &mut R,
        stop: StopWhen,
        adversary: &mut A,
        observer: &mut O,
    ) -> RunOutcome
    where
        R: Rng64 + ?Sized,
        A: Adversary,
        O: Observer,
    {
        let mut reached_goal = stop.goal_met(&self.tracker, self.time, self.activations);
        while !reached_goal && !stop.budget_exhausted(self.time, self.activations) {
            let event = self.step(rng);
            adversary.after_event(&event, self, rng);
            observer.on_event(&event, &self.tracker, self.time);
            reached_goal = stop.goal_met(&self.tracker, self.time, self.activations);
        }
        RunOutcome {
            time: self.time,
            activations: self.activations,
            migrations: self.migrations,
            reached_goal,
            final_discrepancy: self.tracker.discrepancy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    fn rls() -> RlsPolicy {
        RlsPolicy::new(RlsRule::paper())
    }

    #[test]
    fn construction_errors() {
        let empty = Config::from_loads(vec![0, 0]).unwrap();
        assert_eq!(
            Simulation::new(empty, rls()).unwrap_err(),
            SimError::NoBalls
        );
        assert!(SimError::NoBalls.to_string().contains("at least one ball"));
    }

    #[test]
    fn index_matches_loads_at_construction() {
        let cfg = Config::from_loads(vec![2, 0, 3]).unwrap();
        let sim = Simulation::new(cfg, rls()).unwrap();
        assert!(sim.index().matches(sim.config()));
        assert_eq!(sim.index().total(), 5);
    }

    #[test]
    fn step_advances_time_and_counts() {
        let cfg = Config::all_in_one_bin(4, 8).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(1);
        let e = sim.step(&mut rng);
        assert!(e.time > 0.0);
        assert_eq!(e.activations, 1);
        assert_eq!(e.ball(), None, "exchangeable sampling has no identity");
        assert_eq!(sim.activations(), 1);
        assert!(sim.time() > 0.0);
    }

    #[test]
    fn events_keep_tracker_and_index_consistent_with_config() {
        let cfg = Config::all_in_one_bin(8, 40).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..5000 {
            sim.step(&mut rng);
        }
        assert!(sim.tracker().matches(sim.config()));
        assert!(sim.index().matches(sim.config()));
        assert_eq!(sim.config().m(), 40, "moves conserve balls");
    }

    #[test]
    fn reaches_perfect_balance_on_small_instance() {
        let cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(3);
        let outcome = sim.run(&mut rng, StopWhen::perfectly_balanced());
        assert!(outcome.reached_goal);
        assert!(sim.config().is_perfectly_balanced());
        assert_eq!(sim.config().loads().iter().sum::<u64>(), 64);
        assert!(outcome.migrations >= 56, "needs at least 64 - 8 moves");
        assert!(outcome.final_discrepancy < 1.0);
    }

    #[test]
    fn event_budget_is_respected() {
        let cfg = Config::all_in_one_bin(64, 64 * 64).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(4);
        let outcome = sim.run(
            &mut rng,
            StopWhen::perfectly_balanced().with_max_activations(100),
        );
        assert!(!outcome.reached_goal);
        assert_eq!(outcome.activations, 100);
    }

    #[test]
    fn time_budget_is_respected() {
        let cfg = Config::all_in_one_bin(64, 4096).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(5);
        let outcome = sim.run(&mut rng, StopWhen::perfectly_balanced().with_max_time(0.01));
        assert!(!outcome.reached_goal);
        assert!(outcome.time >= 0.01);
    }

    #[test]
    fn waiting_times_have_rate_m() {
        // Mean inter-event time should be ≈ 1/m.
        let m = 500u64;
        let cfg = Config::all_in_one_bin(10, m).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(6);
        let events = 20_000;
        for _ in 0..events {
            sim.step(&mut rng);
        }
        let mean_gap = sim.time() / events as f64;
        let expected = 1.0 / m as f64;
        assert!(
            (mean_gap - expected).abs() < 0.1 * expected,
            "mean gap {mean_gap}, expected {expected}"
        );
    }

    #[test]
    fn activated_bin_is_load_proportional() {
        // With loads (30, 10) the source of an activation must be bin 0
        // about 75% of the time — the uniform-ball law.
        let cfg = Config::from_loads(vec![30, 10]).unwrap();
        // A policy that never moves keeps the loads fixed.
        struct Frozen;
        impl Policy for Frozen {
            fn permits(&self, _: &[u64], _: usize, _: usize) -> bool {
                false
            }
        }
        let mut sim = Simulation::new(cfg, Frozen).unwrap();
        let mut rng = rng_from_seed(11);
        let trials = 40_000;
        let mut from_heavy = 0u64;
        for _ in 0..trials {
            if sim.step(&mut rng).source == 0 {
                from_heavy += 1;
            }
        }
        let frac = from_heavy as f64 / trials as f64;
        assert!(
            (frac - 0.75).abs() < 0.01,
            "heavy-bin activation fraction {frac}, expected 0.75"
        );
    }

    #[test]
    fn force_move_rejects_invalid_and_applies_valid() {
        let cfg = Config::from_loads(vec![3, 0, 1]).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        assert!(!sim.force_move(1, 0), "empty source");
        assert!(!sim.force_move(0, 0), "self loop");
        assert!(!sim.force_move(0, 9), "out of range");
        assert!(sim.force_move(2, 0), "valid destructive move");
        assert_eq!(sim.config().loads(), &[4, 0, 0]);
        assert!(sim.tracker().matches(sim.config()));
        assert!(sim.index().matches(sim.config()));
    }

    #[test]
    fn already_balanced_start_stops_immediately() {
        let cfg = Config::uniform(6, 5).unwrap();
        let mut sim = Simulation::new(cfg, rls()).unwrap();
        let mut rng = rng_from_seed(7);
        let outcome = sim.run(&mut rng, StopWhen::perfectly_balanced());
        assert!(outcome.reached_goal);
        assert_eq!(outcome.activations, 0);
        assert_eq!(outcome.time, 0.0);
    }

    #[test]
    fn strict_variant_also_balances() {
        let cfg = Config::all_in_one_bin(6, 36).unwrap();
        let policy = RlsPolicy::new(RlsRule::new(rls_core::RlsVariant::Strict));
        assert_eq!(policy.name(), "rls-strict");
        let mut sim = Simulation::new(cfg, policy).unwrap();
        let mut rng = rng_from_seed(8);
        let outcome = sim.run(&mut rng, StopWhen::perfectly_balanced());
        assert!(outcome.reached_goal);
        assert!(sim.config().is_perfectly_balanced());
    }
}

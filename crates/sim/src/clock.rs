//! The literal per-ball clock engine.
//!
//! This is the textbook implementation of the paper's model: every ball owns
//! an `Exp(1)` clock, the next event is the earliest pending ring, and after
//! a ring the ball re-arms its clock.  A binary heap of `(ring time, ball)`
//! pairs gives `O(log m)` per event versus the `O(1)` of the superposition
//! engine in [`engine`](crate::engine) — but the two simulate *exactly the
//! same law*, which the test-suite and the scheduler ablation bench verify.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rls_core::{Config, LoadTracker, Move, RlsRule};
use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{Rng64, RngExt};

use crate::engine::RunOutcome;
use crate::events::Event;
use crate::stopping::StopWhen;

/// Heap entry: the next ring time of a ball.  Ordered as a min-heap on time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ring {
    time: f64,
    ball: u32,
}

impl Eq for Ring {}

impl Ord for Ring {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.ball.cmp(&self.ball))
    }
}

impl PartialOrd for Ring {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-ball clock simulation of the RLS process.
#[derive(Debug, Clone)]
pub struct ClockEngine {
    cfg: Config,
    balls: Vec<u32>,
    tracker: LoadTracker,
    rule: RlsRule,
    heap: BinaryHeap<Ring>,
    time: f64,
    activations: u64,
    migrations: u64,
    unit_clock: Exponential,
}

impl ClockEngine {
    /// Create the engine; all clocks are armed at construction time.
    ///
    /// # Panics
    /// Panics if the configuration has no balls.
    pub fn new<R: Rng64 + ?Sized>(initial: Config, rule: RlsRule, rng: &mut R) -> Self {
        let m = initial.m();
        assert!(m > 0, "clock engine requires at least one ball");
        assert!(m <= u32::MAX as u64, "too many balls");
        let unit_clock = Exponential::new(1.0).expect("rate 1 is valid");
        let mut balls = Vec::with_capacity(m as usize);
        for (bin, &load) in initial.loads().iter().enumerate() {
            for _ in 0..load {
                balls.push(bin as u32);
            }
        }
        let mut heap = BinaryHeap::with_capacity(m as usize);
        for ball in 0..m as u32 {
            heap.push(Ring {
                time: unit_clock.sample(rng),
                ball,
            });
        }
        let tracker = LoadTracker::new(&initial);
        Self {
            cfg: initial,
            balls,
            tracker,
            rule,
            heap,
            time: 0.0,
            activations: 0,
            migrations: 0,
            unit_clock,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Incremental tracker.
    pub fn tracker(&self) -> &LoadTracker {
        &self.tracker
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Process the earliest pending ring.
    pub fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> Event {
        let ring = self
            .heap
            .pop()
            .expect("heap always holds one entry per ball");
        self.time = ring.time;
        self.activations += 1;
        let ball = ring.ball as usize;
        let source = self.balls[ball] as usize;
        let dest = rng.next_index(self.cfg.n());

        let mut moved = false;
        if source != dest
            && self
                .rule
                .permits_loads(self.cfg.load(source), self.cfg.load(dest))
        {
            let (lf, lt) = (self.cfg.load(source), self.cfg.load(dest));
            self.cfg
                .apply(Move::new(source, dest))
                .expect("legal move applies");
            self.tracker.record_move(lf, lt);
            self.balls[ball] = dest as u32;
            self.migrations += 1;
            moved = true;
        }

        // Re-arm the clock.
        self.heap.push(Ring {
            time: self.time + self.unit_clock.sample(rng),
            ball: ring.ball,
        });

        Event::activation(self.time, source, dest, moved, self.activations).with_ball(ball as u64)
    }

    /// Run until a stopping condition triggers.
    pub fn run<R: Rng64 + ?Sized>(&mut self, rng: &mut R, stop: StopWhen) -> RunOutcome {
        let mut reached_goal = stop.goal_met(&self.tracker, self.time, self.activations);
        while !reached_goal && !stop.budget_exhausted(self.time, self.activations) {
            self.step(rng);
            reached_goal = stop.goal_met(&self.tracker, self.time, self.activations);
        }
        RunOutcome {
            time: self.time,
            activations: self.activations,
            migrations: self.migrations,
            reached_goal,
            final_discrepancy: self.tracker.discrepancy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RlsPolicy, Simulation};
    use crate::stats::Summary;
    use rls_rng::rng_from_seed;

    #[test]
    fn ring_ordering_is_min_heap() {
        let mut heap = BinaryHeap::new();
        heap.push(Ring { time: 2.0, ball: 0 });
        heap.push(Ring { time: 0.5, ball: 1 });
        heap.push(Ring { time: 1.0, ball: 2 });
        assert_eq!(heap.pop().unwrap().ball, 1);
        assert_eq!(heap.pop().unwrap().ball, 2);
        assert_eq!(heap.pop().unwrap().ball, 0);
    }

    #[test]
    fn event_times_are_nondecreasing() {
        let cfg = Config::all_in_one_bin(6, 30).unwrap();
        let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(1));
        let mut rng = rng_from_seed(2);
        let mut last = 0.0;
        for _ in 0..2000 {
            let e = engine.step(&mut rng);
            assert!(e.time >= last);
            last = e.time;
        }
        assert!(engine.tracker().matches(engine.config()));
    }

    #[test]
    fn reaches_perfect_balance() {
        let cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(3));
        let outcome = engine.run(&mut rng_from_seed(4), StopWhen::perfectly_balanced());
        assert!(outcome.reached_goal);
        assert!(engine.config().is_perfectly_balanced());
    }

    #[test]
    #[should_panic(expected = "at least one ball")]
    fn rejects_empty_system() {
        let cfg = Config::from_loads(vec![0, 0]).unwrap();
        let _ = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(5));
    }

    /// The two engines simulate the same law: compare the distribution of
    /// balancing times over a few dozen trials. This is the cross-validation
    /// the module documentation promises; tolerances are generous so the
    /// test is robust for the fixed seeds used.
    #[test]
    fn superposition_and_clock_engines_agree_in_distribution() {
        let n = 8;
        let m = 64;
        let trials = 40;
        let mut clock_times = Vec::with_capacity(trials);
        let mut super_times = Vec::with_capacity(trials);
        for t in 0..trials as u64 {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(100 + t));
            clock_times.push(
                engine
                    .run(&mut rng_from_seed(200 + t), StopWhen::perfectly_balanced())
                    .time,
            );

            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            super_times.push(
                sim.run(&mut rng_from_seed(300 + t), StopWhen::perfectly_balanced())
                    .time,
            );
        }
        let c = Summary::from_samples(&clock_times);
        let s = Summary::from_samples(&super_times);
        let rel = (c.mean - s.mean).abs() / s.mean;
        assert!(
            rel < 0.35,
            "means differ too much: clock {} vs superposition {}",
            c.mean,
            s.mean
        );
    }
}

//! Monte-Carlo driver: many independent trials of a stopping-time
//! experiment, sequentially or across threads.
//!
//! Every trial derives its own random stream from the experiment's master
//! seed through [`StreamFactory`], so results are reproducible bit-for-bit
//! regardless of how many threads execute them or in which order.

use rls_core::Config;
use rls_rng::{StreamFactory, StreamId};
use serde::{Deserialize, Serialize};

use crate::engine::{Policy, RunOutcome, Simulation};
use crate::parallel::{default_threads, parallel_map};
use crate::stats::Summary;
use crate::stopping::StopWhen;

/// Result of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Trial index.
    pub trial: u64,
    /// Simulated time at which the run stopped.
    pub time: f64,
    /// Number of activations processed.
    pub activations: u64,
    /// Number of migrations performed.
    pub migrations: u64,
    /// Whether the goal (rather than a budget) stopped the run.
    pub reached_goal: bool,
}

impl TrialResult {
    fn from_outcome(trial: u64, outcome: RunOutcome) -> Self {
        Self {
            trial,
            time: outcome.time,
            activations: outcome.activations,
            migrations: outcome.migrations,
            reached_goal: outcome.reached_goal,
        }
    }
}

/// Aggregated results of a Monte-Carlo experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Per-trial results, in trial order.
    pub trials: Vec<TrialResult>,
    /// Summary of stopping times.
    pub time: Summary,
    /// Summary of activation counts.
    pub activations: Summary,
    /// Summary of migration counts.
    pub migrations: Summary,
    /// Fraction of trials that reached the goal.
    pub goal_rate: f64,
}

impl MonteCarloReport {
    fn from_trials(trials: Vec<TrialResult>) -> Self {
        assert!(
            !trials.is_empty(),
            "Monte-Carlo experiment needs at least one trial"
        );
        let times: Vec<f64> = trials.iter().map(|t| t.time).collect();
        let acts: Vec<f64> = trials.iter().map(|t| t.activations as f64).collect();
        let migs: Vec<f64> = trials.iter().map(|t| t.migrations as f64).collect();
        let goal_rate =
            trials.iter().filter(|t| t.reached_goal).count() as f64 / trials.len() as f64;
        Self {
            time: Summary::from_samples(&times),
            activations: Summary::from_samples(&acts),
            migrations: Summary::from_samples(&migs),
            goal_rate,
            trials,
        }
    }

    /// The stopping times of all trials (convenience for dominance tests and
    /// quantile extraction).
    pub fn times(&self) -> Vec<f64> {
        self.trials.iter().map(|t| t.time).collect()
    }
}

/// A Monte-Carlo experiment: run a policy from (copies of) an initial
/// configuration until a stopping condition, many times.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    trials: usize,
    master_seed: u64,
    threads: usize,
    salt: u64,
}

impl MonteCarlo {
    /// An experiment with the given number of trials and master seed,
    /// defaulting to one thread (fully deterministic *and* observable in
    /// single-threaded profiling); call [`parallel`](Self::parallel) to use
    /// all cores — results are identical either way.
    pub fn new(trials: usize, master_seed: u64) -> Self {
        assert!(trials > 0, "at least one trial is required");
        Self {
            trials,
            master_seed,
            threads: 1,
            salt: 0,
        }
    }

    /// Use the default number of worker threads.
    pub fn parallel(mut self) -> Self {
        self.threads = default_threads();
        self
    }

    /// Use an explicit number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Distinguish several experiments sharing a master seed (e.g. the
    /// points of a parameter sweep) so they do not reuse random streams.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Run the experiment with a fixed initial configuration and policy.
    ///
    /// `make_policy` is invoked once per trial so stateful policies are
    /// possible; for plain RLS pass a closure returning [`RlsPolicy`](crate::engine::RlsPolicy).
    pub fn run<P, F>(&self, initial: &Config, stop: StopWhen, make_policy: F) -> MonteCarloReport
    where
        P: Policy,
        F: Fn(u64) -> P + Sync,
    {
        self.run_with_setup(stop, |_trial| initial.clone(), make_policy)
    }

    /// Run the experiment with a per-trial initial configuration (e.g. a
    /// random workload drawn from the trial's own stream).
    pub fn run_with_setup<P, F, G>(
        &self,
        stop: StopWhen,
        make_initial: G,
        make_policy: F,
    ) -> MonteCarloReport
    where
        P: Policy,
        F: Fn(u64) -> P + Sync,
        G: Fn(u64) -> Config + Sync,
    {
        let factory = StreamFactory::new(self.master_seed);
        let salt = self.salt;
        let results = parallel_map(self.trials, self.threads, |i| {
            let trial = i as u64;
            let mut rng = factory.rng(StreamId::trial(trial).with_component(1).with_salt(salt));
            let initial = make_initial(trial);
            let policy = make_policy(trial);
            let mut sim = Simulation::new(initial, policy)
                .expect("experiment initial configurations must have at least one ball");
            let outcome = sim.run(&mut rng, stop);
            TrialResult::from_outcome(trial, outcome)
        });
        MonteCarloReport::from_trials(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RlsPolicy;
    use rls_core::RlsRule;

    fn policy(_trial: u64) -> RlsPolicy {
        RlsPolicy::new(RlsRule::paper())
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = MonteCarlo::new(0, 1);
    }

    #[test]
    fn report_aggregates_all_trials() {
        let initial = Config::all_in_one_bin(8, 64).unwrap();
        let report = MonteCarlo::new(16, 42).run(&initial, StopWhen::perfectly_balanced(), policy);
        assert_eq!(report.trials.len(), 16);
        assert_eq!(report.goal_rate, 1.0);
        assert!(report.time.mean > 0.0);
        assert!(report.activations.mean >= 56.0);
        assert_eq!(report.times().len(), 16);
        // Trials are in order.
        for (i, t) in report.trials.iter().enumerate() {
            assert_eq!(t.trial, i as u64);
        }
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let initial = Config::all_in_one_bin(6, 48).unwrap();
        let seq = MonteCarlo::new(12, 7).run(&initial, StopWhen::perfectly_balanced(), policy);
        let par = MonteCarlo::new(12, 7).with_threads(4).run(
            &initial,
            StopWhen::perfectly_balanced(),
            policy,
        );
        assert_eq!(seq.trials, par.trials);
    }

    #[test]
    fn different_salts_give_different_results() {
        let initial = Config::all_in_one_bin(6, 48).unwrap();
        let a = MonteCarlo::new(8, 7).with_salt(0).run(
            &initial,
            StopWhen::perfectly_balanced(),
            policy,
        );
        let b = MonteCarlo::new(8, 7).with_salt(1).run(
            &initial,
            StopWhen::perfectly_balanced(),
            policy,
        );
        assert_ne!(a.trials, b.trials);
    }

    #[test]
    fn per_trial_setup_is_used() {
        // Each trial gets a different (but always unbalanced) start; all
        // should still reach perfect balance.
        let report = MonteCarlo::new(6, 3).run_with_setup(
            StopWhen::perfectly_balanced(),
            |trial| Config::all_in_one_bin(4 + (trial as usize % 3), 40).unwrap(),
            policy,
        );
        assert_eq!(report.goal_rate, 1.0);
    }

    #[test]
    fn budget_limited_runs_report_goal_rate_below_one() {
        let initial = Config::all_in_one_bin(16, 16 * 64).unwrap();
        let report = MonteCarlo::new(4, 9).run(
            &initial,
            StopWhen::perfectly_balanced().with_max_activations(10),
            policy,
        );
        assert_eq!(report.goal_rate, 0.0);
    }

    #[test]
    fn builder_accessors() {
        let mc = MonteCarlo::new(5, 1).parallel();
        assert_eq!(mc.trials(), 5);
        let mc2 = MonteCarlo::new(5, 1).with_threads(0);
        // with_threads clamps to ≥ 1
        let initial = Config::all_in_one_bin(4, 16).unwrap();
        let _ = mc2.run(&initial, StopWhen::perfectly_balanced(), policy);
    }
}

//! Destructive-move adversaries (Lemma 2).
//!
//! The Destructive Majorization Lemma states that an adversary who performs
//! an arbitrary number of *destructive* moves (reversals of legal protocol
//! moves) after each ball movement can only slow the protocol down: the
//! discrepancy under the adversarial process stochastically dominates the
//! discrepancy of plain RLS at every time.  The experiments in E5 exercise
//! this with a few concrete adversaries; the analysis-style simplifications
//! ("move every ball back into one bin") are expressible as well.

use rls_core::MoveClass;
use rls_rng::{Rng64, RngExt};

use crate::engine::{Policy, Simulation};
use crate::events::Event;

/// An adversary that may inject destructive moves after each protocol event.
///
/// Implementations must only ever perform destructive moves (this is what
/// the DML permits); [`Simulation::force_move`] applies whatever it is asked
/// to, so the adversary itself is responsible for checking the class, and
/// the test-suite checks the provided adversaries never perform an
/// improving move.
pub trait Adversary {
    /// Called after every activation (whether or not the ball moved).
    fn after_event<P: Policy, R: Rng64 + ?Sized>(
        &mut self,
        event: &Event,
        sim: &mut Simulation<P>,
        rng: &mut R,
    );
}

/// The trivial adversary: does nothing.  `P(0)` in the Lemma 2 proof.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    #[inline]
    fn after_event<P: Policy, R: Rng64 + ?Sized>(
        &mut self,
        _event: &Event,
        _sim: &mut Simulation<P>,
        _rng: &mut R,
    ) {
    }
}

/// After each *migration*, attempts up to `attempts` random destructive
/// moves, each performed with probability `probability`, until an optional
/// total budget of adversarial moves is spent (the process `P(k)` from the
/// Lemma 2 proof uses a finite budget `k`).
#[derive(Debug, Clone, Copy)]
pub struct RandomDestructiveAdversary {
    /// Destructive-move attempts per protocol migration.
    pub attempts: usize,
    /// Probability of actually performing each attempted move.
    pub probability: f64,
    /// Remaining budget of adversarial moves (`None` = unlimited).
    pub budget: Option<u64>,
    performed: u64,
}

impl RandomDestructiveAdversary {
    /// Adversary with `attempts` attempts per event, each taken with the
    /// given probability, and an optional total budget.
    pub fn new(attempts: usize, probability: f64, budget: Option<u64>) -> Self {
        Self {
            attempts,
            probability,
            budget,
            performed: 0,
        }
    }

    /// Number of destructive moves performed so far.
    pub fn performed(&self) -> u64 {
        self.performed
    }

    fn budget_left(&self) -> bool {
        self.budget.is_none_or(|b| self.performed < b)
    }
}

impl Adversary for RandomDestructiveAdversary {
    fn after_event<P: Policy, R: Rng64 + ?Sized>(
        &mut self,
        event: &Event,
        sim: &mut Simulation<P>,
        rng: &mut R,
    ) {
        if !event.moved {
            return;
        }
        let n = sim.config().n();
        for _ in 0..self.attempts {
            if !self.budget_left() {
                return;
            }
            if !rng.next_bernoulli(self.probability) {
                continue;
            }
            let from = rng.next_index(n);
            let to = rng.next_index(n);
            if from == to || sim.config().load(from) == 0 {
                continue;
            }
            let class = MoveClass::classify(sim.config().load(from), sim.config().load(to), false);
            if class.is_destructive() && sim.force_move(from, to) {
                self.performed += 1;
            }
        }
    }
}

/// After each migration, moves one ball from a least-loaded bin back into a
/// most-loaded bin (always a destructive move) — the "pile everything back
/// up" adversary, the most aggressive single-move adversary per event.
#[derive(Debug, Clone, Copy, Default)]
pub struct PileUpAdversary {
    performed: u64,
}

impl PileUpAdversary {
    /// A fresh pile-up adversary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of destructive moves performed so far.
    pub fn performed(&self) -> u64 {
        self.performed
    }
}

impl Adversary for PileUpAdversary {
    fn after_event<P: Policy, R: Rng64 + ?Sized>(
        &mut self,
        event: &Event,
        sim: &mut Simulation<P>,
        _rng: &mut R,
    ) {
        if !event.moved {
            return;
        }
        let loads = sim.config().loads();
        let (mut max_bin, mut max_load) = (0usize, 0u64);
        let (mut min_bin, mut min_load) = (0usize, u64::MAX);
        for (i, &l) in loads.iter().enumerate() {
            if l > max_load {
                max_load = l;
                max_bin = i;
            }
            if l < min_load {
                min_load = l;
                min_bin = i;
            }
        }
        // Moving from the minimum to the maximum is destructive whenever the
        // bins differ and the minimum is non-empty.
        if max_bin != min_bin && min_load > 0 && sim.force_move(min_bin, max_bin) {
            self.performed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RlsPolicy;
    use crate::stopping::StopWhen;
    use rls_core::{Config, RlsRule};
    use rls_rng::rng_from_seed;

    fn sim(n: usize, m: u64) -> Simulation<RlsPolicy> {
        Simulation::new(
            Config::all_in_one_bin(n, m).unwrap(),
            RlsPolicy::new(RlsRule::paper()),
        )
        .unwrap()
    }

    #[test]
    fn no_adversary_is_a_noop() {
        let mut s = sim(4, 16);
        let mut rng = rng_from_seed(1);
        let before = s.config().clone();
        let event = Event::activation(0.1, 0, 1, true, 1);
        NoAdversary.after_event(&event, &mut s, &mut rng);
        assert_eq!(s.config(), &before);
    }

    #[test]
    fn random_adversary_respects_budget() {
        let mut s = sim(8, 80);
        let mut rng = rng_from_seed(2);
        let mut adv = RandomDestructiveAdversary::new(4, 1.0, Some(5));
        let _ = s.run_with(
            &mut rng,
            StopWhen::perfectly_balanced().with_max_activations(20_000),
            &mut adv,
            &mut (),
        );
        assert!(adv.performed() <= 5);
    }

    #[test]
    fn adversary_slows_down_but_balance_is_still_reached() {
        // With a finite adversarial budget the process still balances.
        let mut plain = sim(8, 64);
        let mut rng1 = rng_from_seed(3);
        let t_plain = plain.run(&mut rng1, StopWhen::perfectly_balanced()).time;

        let mut adv_sim = sim(8, 64);
        let mut rng2 = rng_from_seed(3);
        let mut adv = RandomDestructiveAdversary::new(1, 1.0, Some(50));
        let outcome = adv_sim.run_with(
            &mut rng2,
            StopWhen::perfectly_balanced().with_max_activations(2_000_000),
            &mut adv,
            &mut (),
        );
        assert!(outcome.reached_goal);
        assert!(adv.performed() > 0);
        // Not a strict pathwise guarantee, but with the same seed and 50
        // injected destructive moves the adversarial run should not be
        // faster by more than noise; we only check it still terminates and
        // record the times for sanity.
        assert!(outcome.time > 0.0 && t_plain > 0.0);
    }

    #[test]
    fn pileup_adversary_performs_destructive_moves() {
        let mut s = sim(6, 36);
        let mut rng = rng_from_seed(4);
        let mut adv = PileUpAdversary::new();
        // With a pile-up move after *every* migration, progress toward
        // balance is undone each time; cap the run with a budget.
        let outcome = s.run_with(
            &mut rng,
            StopWhen::perfectly_balanced().with_max_activations(5_000),
            &mut adv,
            &mut (),
        );
        assert!(adv.performed() > 0);
        // The run should not have balanced: the adversary undoes progress.
        assert!(!outcome.reached_goal);
    }

    #[test]
    fn adversaries_keep_ball_count_invariant() {
        let mut s = sim(8, 48);
        let mut rng = rng_from_seed(5);
        let mut adv = RandomDestructiveAdversary::new(2, 0.5, None);
        let _ = s.run_with(
            &mut rng,
            StopWhen::perfectly_balanced().with_max_activations(10_000),
            &mut adv,
            &mut (),
        );
        assert_eq!(s.config().loads().iter().sum::<u64>(), 48);
        assert!(s.tracker().matches(s.config()));
    }
}

//! Statistics for Monte-Carlo experiments.
//!
//! The experiments report means, confidence intervals and high quantiles of
//! stopping times (the w.h.p. statements of Theorem 1 are about the
//! `1 − 1/n` quantile), fit log–log slopes to verify scaling exponents
//! (E1, E11), and test the stochastic-dominance claim of Lemma 2 by
//! comparing empirical CDFs (E5).  Everything here is plain, allocation-
//! light numerics with no external dependencies.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for fewer than two samples).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Half-width of the 95% confidence interval for the mean (normal
    /// approximation).
    pub ci95_half_width: f64,
}

impl Summary {
    /// Compute the summary of a sample; panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let std_dev = variance.sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        Self {
            count,
            mean,
            variance,
            std_dev,
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
            ci95_half_width: 1.96 * std_dev / (count as f64).sqrt(),
        }
    }
}

/// Empirical quantile of an already-sorted sample (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical quantile of an unsorted sample.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    quantile_sorted(&sorted, q)
}

/// Streaming mean/variance accumulator (Welford's algorithm), used where
/// storing every sample would be wasteful (e.g. per-event statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Result of an ordinary-least-squares straight-line fit `y ≈ a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²`.
    pub r_squared: f64,
}

/// Least-squares fit of `y` against `x`.
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = mean_y - slope * mean_x;
    let r_squared = if sxx > 0.0 && syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Fit `y ≈ c · x^b` by regressing `ln y` on `ln x`; returns the exponent
/// `b` and `R²`.  Used to verify scaling claims such as "the balancing time
/// grows like `ln n`, not `ln² n`" (E11).
pub fn log_log_fit(x: &[f64], y: &[f64]) -> LinearFit {
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    linear_fit(&lx, &ly)
}

/// Empirical CDF evaluated at `x`: the fraction of samples ≤ `x`.
pub fn empirical_cdf(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&v| v <= x).count() as f64 / samples.len() as f64
}

/// Outcome of the one-sided dominance comparison of two samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DominanceReport {
    /// `max_x (F_b(x) − F_a(x))`: how much the CDF of `b` exceeds the CDF of
    /// `a` anywhere.  If `a` stochastically dominates `b` this is ≥ 0 by a
    /// lot; if `b` dominates `a` it is ≤ sampling noise.
    pub max_cdf_gap: f64,
    /// `max_x (F_a(x) − F_b(x))`, the violation in the claimed direction.
    pub max_violation: f64,
    /// Difference of means `mean(a) − mean(b)`.
    pub mean_gap: f64,
}

/// Compare two samples for the claim "`a` stochastically dominates `b`"
/// (i.e. `P(a ≥ x) ≥ P(b ≥ x)` for all `x`, equivalently `F_a(x) ≤ F_b(x)`).
///
/// `max_violation` close to zero (within sampling noise) is consistent with
/// the claim; a large value refutes it.  Used by the DML experiment: the
/// balancing time (and discrepancy trajectory) *with* adversarial
/// destructive moves should dominate the one without.
pub fn dominance_report(a: &[f64], b: &[f64]) -> DominanceReport {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "dominance test needs non-empty samples"
    );
    let mut points: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    points.sort_by(|x, y| x.partial_cmp(y).unwrap_or(core::cmp::Ordering::Equal));
    points.dedup();
    let mut max_gap = f64::NEG_INFINITY;
    let mut max_violation = f64::NEG_INFINITY;
    for &x in &points {
        let fa = empirical_cdf(a, x);
        let fb = empirical_cdf(b, x);
        max_gap = max_gap.max(fb - fa);
        max_violation = max_violation.max(fa - fb);
    }
    let mean_a = a.iter().sum::<f64>() / a.len() as f64;
    let mean_b = b.iter().sum::<f64>() / b.len() as f64;
    DominanceReport {
        max_cdf_gap: max_gap,
        max_violation,
        mean_gap: mean_a - mean_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.variance - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_empty_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn online_stats_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut online = OnlineStats::new();
        for &x in &data {
            online.push(x);
        }
        let batch = Summary::from_samples(&data);
        assert!((online.mean() - batch.mean).abs() < 1e-12);
        assert!((online.variance() - batch.variance).abs() < 1e-12);
        assert_eq!(online.count(), 8);
    }

    #[test]
    fn online_stats_merge_matches_combined() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut sa = OnlineStats::new();
        for &x in &a {
            sa.push(x);
        }
        let mut sb = OnlineStats::new();
        for &x in &b {
            sb.push(x);
        }
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let batch = Summary::from_samples(&all);
        assert!((sa.mean() - batch.mean).abs() < 1e-12);
        assert!((sa.variance() - batch.variance).abs() < 1e-9);
        // Merging an empty accumulator is a no-op in both directions.
        let mut empty = OnlineStats::new();
        empty.merge(&sa);
        assert!((empty.mean() - sa.mean()).abs() < 1e-12);
        let snapshot = sa;
        sa.merge(&OnlineStats::new());
        assert_eq!(sa, snapshot);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 + 2.0 * v).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_log_fit_recovers_power_law() {
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v.powf(1.5)).collect();
        let fit = log_log_fit(&x, &y);
        assert!((fit.slope - 1.5).abs() < 1e-9);
        assert!((fit.intercept - 5.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn linear_fit_length_mismatch_panics() {
        let _ = linear_fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn empirical_cdf_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_cdf(&v, 0.0), 0.0);
        assert_eq!(empirical_cdf(&v, 2.0), 0.5);
        assert_eq!(empirical_cdf(&v, 10.0), 1.0);
        assert_eq!(empirical_cdf(&[], 1.0), 0.0);
    }

    #[test]
    fn dominance_detects_clear_shift() {
        // b shifted right by 10: b dominates a.
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 10.0).collect();
        // Claim "b dominates a": dominance_report(b, a).
        let report = dominance_report(&b, &a);
        assert!(report.max_violation <= 0.0 + 1e-12);
        assert!(report.max_cdf_gap > 0.05);
        assert!(report.mean_gap > 9.0);
        // The reversed claim is clearly violated.
        let reversed = dominance_report(&a, &b);
        assert!(reversed.max_violation > 0.05);
    }

    #[test]
    fn dominance_of_identical_samples_is_clean() {
        let a = [1.0, 2.0, 3.0];
        let report = dominance_report(&a, &a);
        assert_eq!(report.max_violation, 0.0);
        assert_eq!(report.max_cdf_gap, 0.0);
        assert_eq!(report.mean_gap, 0.0);
    }
}

//! Event records emitted by the simulation engines.

use serde::{Deserialize, Serialize};

/// One activation of the continuous-time process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time at which the ball's clock rang.
    pub time: f64,
    /// Index of the activated ball.
    pub ball: usize,
    /// Bin the ball occupied when activated.
    pub source: usize,
    /// Destination bin it sampled.
    pub dest: usize,
    /// Whether the protocol performed the migration.
    pub moved: bool,
    /// Running count of activations so far (1-based, including this one).
    pub activations: u64,
}

impl Event {
    /// Whether the sampled destination equals the source bin.
    pub fn is_self_sample(&self) -> bool {
        self.source == self.dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_sample_detection() {
        let mut e = Event {
            time: 1.0,
            ball: 0,
            source: 3,
            dest: 3,
            moved: false,
            activations: 1,
        };
        assert!(e.is_self_sample());
        e.dest = 4;
        assert!(!e.is_self_sample());
    }
}

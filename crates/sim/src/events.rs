//! Event records emitted by the simulation engines.

use serde::{Deserialize, Serialize};

/// One activation of the continuous-time process.
///
/// Balls are exchangeable, so since the engines moved to Fenwick-indexed
/// exchangeable-ball sampling an event no longer carries a ball identity as
/// a public field: the superposition engine samples *a bin with probability
/// `load/m`* directly and has no identity to report.  The literal per-ball
/// [`ClockEngine`](crate::clock::ClockEngine) still tracks identities and
/// exposes them through the [`ball`](Event::ball) compat accessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time at which the ball's clock rang.
    pub time: f64,
    /// Bin the ball occupied when activated.
    pub source: usize,
    /// Destination bin it sampled.
    pub dest: usize,
    /// Whether the protocol performed the migration.
    pub moved: bool,
    /// Running count of activations so far (1-based, including this one).
    pub activations: u64,
    /// Identity of the activated ball, when the emitting engine tracks one.
    ball: Option<u64>,
}

impl Event {
    /// An activation of an anonymous (exchangeable) ball — what the
    /// superposition engine emits.
    pub fn activation(
        time: f64,
        source: usize,
        dest: usize,
        moved: bool,
        activations: u64,
    ) -> Self {
        Self {
            time,
            source,
            dest,
            moved,
            activations,
            ball: None,
        }
    }

    /// Attach a concrete ball identity (used by the per-ball clock engine).
    pub fn with_ball(mut self, ball: u64) -> Self {
        self.ball = Some(ball);
        self
    }

    /// Compat accessor for the pre-Fenwick `ball` field: the activated
    /// ball's identity if the emitting engine tracks identities (`None`
    /// from the exchangeable-ball engines).
    pub fn ball(&self) -> Option<u64> {
        self.ball
    }

    /// Whether the sampled destination equals the source bin.
    pub fn is_self_sample(&self) -> bool {
        self.source == self.dest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_sample_detection() {
        let mut e = Event::activation(1.0, 3, 3, false, 1);
        assert!(e.is_self_sample());
        e.dest = 4;
        assert!(!e.is_self_sample());
    }

    #[test]
    fn ball_identity_is_optional() {
        let anonymous = Event::activation(1.0, 0, 1, true, 1);
        assert_eq!(anonymous.ball(), None);
        let identified = anonymous.with_ball(17);
        assert_eq!(identified.ball(), Some(17));
    }

    #[test]
    fn serde_round_trip_preserves_the_identity() {
        let e = Event::activation(0.5, 2, 4, true, 9).with_ball(3);
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}

//! Observers: record trajectory information while a simulation runs.
//!
//! Observers receive every event together with the incrementally maintained
//! [`LoadTracker`], so recording a quantity like the discrepancy or the
//! Phase-2 potential costs O(1) per event.  They are the mechanism behind
//! the per-phase experiments (E8–E10): a [`PhaseTracker`] notes the first
//! time each balance threshold is crossed, a [`TimeSeries`] samples a
//! quantity on a fixed time grid for trajectory plots, and a [`MoveCounter`]
//! aggregates activation/migration statistics.

use rls_core::LoadTracker;
use serde::{Deserialize, Serialize};

use crate::events::Event;

/// Receives every simulation event.
pub trait Observer {
    /// Called after the event has been applied; `tracker` reflects the
    /// post-event configuration and `time` is the current simulation time.
    fn on_event(&mut self, event: &Event, tracker: &LoadTracker, time: f64);
}

/// The unit observer ignores everything.
impl Observer for () {
    #[inline]
    fn on_event(&mut self, _event: &Event, _tracker: &LoadTracker, _time: f64) {}
}

/// Fan-out to two observers.
impl<A: Observer, B: Observer> Observer for (A, B) {
    #[inline]
    fn on_event(&mut self, event: &Event, tracker: &LoadTracker, time: f64) {
        self.0.on_event(event, tracker, time);
        self.1.on_event(event, tracker, time);
    }
}

/// A sampled point of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Simulation time of the sample.
    pub time: f64,
    /// Discrepancy at that time.
    pub discrepancy: f64,
    /// Number of overloaded balls at that time.
    pub overloaded_balls: u64,
    /// Maximum load at that time.
    pub max_load: u64,
    /// Minimum load at that time.
    pub min_load: u64,
    /// Activations processed so far.
    pub activations: u64,
}

/// Samples the tracked quantities on a fixed simulation-time grid.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: f64,
    next_sample: f64,
    points: Vec<SamplePoint>,
}

impl TimeSeries {
    /// Sample every `interval` units of simulated time (the first sample is
    /// taken at the first event at or after `interval`).
    pub fn new(interval: f64) -> Self {
        assert!(interval > 0.0, "sampling interval must be positive");
        Self {
            interval,
            next_sample: interval,
            points: Vec::new(),
        }
    }

    /// The recorded samples.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Consume the observer and return the samples.
    pub fn into_points(self) -> Vec<SamplePoint> {
        self.points
    }
}

impl Observer for TimeSeries {
    fn on_event(&mut self, event: &Event, tracker: &LoadTracker, time: f64) {
        if time < self.next_sample {
            return;
        }
        self.points.push(SamplePoint {
            time,
            discrepancy: tracker.discrepancy(),
            overloaded_balls: tracker.overloaded_balls(),
            max_load: tracker.max_load(),
            min_load: tracker.min_load(),
            activations: event.activations,
        });
        while self.next_sample <= time {
            self.next_sample += self.interval;
        }
    }
}

/// Records the first time and activation count at which the discrepancy
/// drops to each of a set of thresholds — the phase boundaries of the
/// paper's analysis.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    thresholds: Vec<f64>,
    hit_times: Vec<Option<f64>>,
    hit_activations: Vec<Option<u64>>,
}

impl PhaseTracker {
    /// Track the given discrepancy thresholds (any order).
    pub fn new(thresholds: Vec<f64>) -> Self {
        let len = thresholds.len();
        Self {
            thresholds,
            hit_times: vec![None; len],
            hit_activations: vec![None; len],
        }
    }

    /// The thresholds being tracked.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// First time the discrepancy was ≤ the i-th threshold, if it happened.
    pub fn hit_time(&self, i: usize) -> Option<f64> {
        self.hit_times[i]
    }

    /// Activation count at the first crossing of the i-th threshold.
    pub fn hit_activations(&self, i: usize) -> Option<u64> {
        self.hit_activations[i]
    }

    /// (threshold, first hitting time) pairs for thresholds that were hit.
    pub fn hits(&self) -> Vec<(f64, f64)> {
        self.thresholds
            .iter()
            .zip(&self.hit_times)
            .filter_map(|(&th, &t)| t.map(|t| (th, t)))
            .collect()
    }
}

impl Observer for PhaseTracker {
    fn on_event(&mut self, event: &Event, tracker: &LoadTracker, time: f64) {
        let disc = tracker.discrepancy();
        for (i, &threshold) in self.thresholds.iter().enumerate() {
            if self.hit_times[i].is_none() && disc <= threshold {
                self.hit_times[i] = Some(time);
                self.hit_activations[i] = Some(event.activations);
            }
        }
    }
}

/// Aggregate counts over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveCounter {
    /// Total activations observed.
    pub activations: u64,
    /// Activations that resulted in a migration.
    pub migrations: u64,
    /// Activations whose sampled destination was the source bin.
    pub self_samples: u64,
}

impl MoveCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of activations that migrated (0 when nothing was observed).
    pub fn migration_rate(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.migrations as f64 / self.activations as f64
        }
    }
}

impl Observer for MoveCounter {
    fn on_event(&mut self, event: &Event, _tracker: &LoadTracker, _time: f64) {
        self.activations += 1;
        if event.moved {
            self.migrations += 1;
        }
        if event.is_self_sample() {
            self.self_samples += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RlsPolicy, Simulation};
    use crate::stopping::StopWhen;
    use crate::NoAdversary;
    use rls_core::{Config, RlsRule};
    use rls_rng::rng_from_seed;

    fn run_with<O: Observer>(observer: &mut O) {
        let cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = rng_from_seed(10);
        sim.run_with(
            &mut rng,
            StopWhen::perfectly_balanced(),
            &mut NoAdversary,
            observer,
        );
    }

    #[test]
    fn time_series_samples_are_ordered_and_spaced() {
        let mut ts = TimeSeries::new(0.05);
        run_with(&mut ts);
        let points = ts.points();
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(w[1].time > w[0].time);
            // Discrepancy is non-increasing for plain RLS.
            assert!(w[1].discrepancy <= w[0].discrepancy + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn time_series_rejects_zero_interval() {
        let _ = TimeSeries::new(0.0);
    }

    #[test]
    fn phase_tracker_records_monotone_hitting_times() {
        let mut pt = PhaseTracker::new(vec![4.0, 2.0, 1.0, 0.999]);
        run_with(&mut pt);
        // All thresholds eventually hit (the run stops at perfect balance).
        let times: Vec<f64> = (0..4).map(|i| pt.hit_time(i).unwrap()).collect();
        // Larger thresholds are hit no later than smaller ones.
        assert!(times[0] <= times[1]);
        assert!(times[1] <= times[2]);
        assert!(times[2] <= times[3]);
        assert!(pt.hit_activations(3).unwrap() > 0);
        assert_eq!(pt.hits().len(), 4);
        assert_eq!(pt.thresholds().len(), 4);
    }

    #[test]
    fn move_counter_counts() {
        let mut mc = MoveCounter::new();
        run_with(&mut mc);
        assert!(mc.activations > 0);
        assert!(mc.migrations >= 56); // at least m − n moves needed
        assert!(mc.migrations <= mc.activations);
        assert!(mc.migration_rate() > 0.0 && mc.migration_rate() <= 1.0);
    }

    #[test]
    fn migration_rate_zero_when_empty() {
        assert_eq!(MoveCounter::new().migration_rate(), 0.0);
    }

    #[test]
    fn tuple_observer_feeds_both() {
        let mut pair = (MoveCounter::new(), PhaseTracker::new(vec![1.0]));
        run_with(&mut pair);
        assert!(pair.0.activations > 0);
        assert!(pair.1.hit_time(0).is_some());
    }
}

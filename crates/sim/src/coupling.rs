//! Coupled runs for the Destructive Majorization Lemma experiments (E5).
//!
//! Lemma 2 claims that, at any fixed time `t`, the discrepancy of the RLS
//! process run *with* an adversary injecting destructive moves
//! stochastically dominates the discrepancy of the plain RLS process.  The
//! experiment estimates both discrepancy distributions at a grid of
//! checkpoint times over many independent trials and checks the empirical
//! CDFs for dominance violations.
//!
//! Two coupling modes are provided:
//!
//! * **paired seeds** — the plain and the adversarial run of a trial share
//!   the activation/destination random stream (the adversary draws from a
//!   separate stream), which reduces variance in the comparison exactly the
//!   way the explicit coupling in the paper's proof does;
//! * **independent** — fully independent streams; dominance in distribution
//!   must still hold, just with more sampling noise.

use rls_core::{Config, RlsRule};
use rls_rng::{StreamFactory, StreamId};
use serde::{Deserialize, Serialize};

use crate::adversary::Adversary;
use crate::engine::{RlsPolicy, Simulation};
use crate::parallel::parallel_map;
use crate::stats::{dominance_report, DominanceReport};

/// Whether the adversarial run reuses the plain run's protocol randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CouplingMode {
    /// Plain and adversarial runs share the protocol random stream.
    PairedSeeds,
    /// Plain and adversarial runs use independent streams.
    Independent,
}

/// Discrepancy samples of plain vs adversarial runs at one checkpoint time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointComparison {
    /// The checkpoint time.
    pub time: f64,
    /// Discrepancies of the plain runs at this time (one per trial).
    pub plain: Vec<f64>,
    /// Discrepancies of the adversarial runs at this time.
    pub adversarial: Vec<f64>,
    /// Dominance report for the claim "adversarial dominates plain".
    pub report: DominanceReport,
}

/// Configuration of a DML dominance experiment.
#[derive(Debug, Clone)]
pub struct DmlExperiment {
    /// Initial configuration shared by all runs.
    pub initial: Config,
    /// Times at which discrepancies are compared.
    pub checkpoints: Vec<f64>,
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed.
    pub master_seed: u64,
    /// Coupling mode.
    pub mode: CouplingMode,
    /// Worker threads.
    pub threads: usize,
}

impl DmlExperiment {
    /// A new experiment with sensible defaults (paired seeds, one thread).
    pub fn new(initial: Config, checkpoints: Vec<f64>, trials: usize, master_seed: u64) -> Self {
        assert!(trials > 0, "at least one trial");
        assert!(!checkpoints.is_empty(), "at least one checkpoint");
        Self {
            initial,
            checkpoints,
            trials,
            master_seed,
            mode: CouplingMode::PairedSeeds,
            threads: 1,
        }
    }

    /// Select the coupling mode.
    pub fn with_mode(mut self, mode: CouplingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Use the given number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run the experiment against an adversary constructed per trial.
    pub fn run<A, F>(&self, make_adversary: F) -> Vec<CheckpointComparison>
    where
        A: Adversary,
        F: Fn(u64) -> A + Sync,
    {
        let factory = StreamFactory::new(self.master_seed);
        let checkpoints = &self.checkpoints;
        let horizon = checkpoints.iter().copied().fold(0.0f64, f64::max);
        let mode = self.mode;
        let initial = &self.initial;

        // Each trial yields (plain discrepancies, adversarial discrepancies)
        // at every checkpoint.
        let per_trial: Vec<(Vec<f64>, Vec<f64>)> = parallel_map(self.trials, self.threads, |i| {
            let trial = i as u64;
            let plain_stream = StreamId::trial(trial).with_component(0);
            let adv_protocol_stream = match mode {
                CouplingMode::PairedSeeds => plain_stream,
                CouplingMode::Independent => StreamId::trial(trial).with_component(1),
            };
            let adversary_stream = StreamId::trial(trial).with_component(2);

            let plain = discrepancies_at(
                initial.clone(),
                checkpoints,
                horizon,
                &mut factory.rng(plain_stream),
                &mut crate::adversary::NoAdversary,
                &mut factory.rng(adversary_stream),
            );
            let mut adversary = make_adversary(trial);
            let adversarial = discrepancies_at(
                initial.clone(),
                checkpoints,
                horizon,
                &mut factory.rng(adv_protocol_stream),
                &mut adversary,
                &mut factory.rng(adversary_stream),
            );
            (plain, adversarial)
        });

        checkpoints
            .iter()
            .enumerate()
            .map(|(ci, &time)| {
                let plain: Vec<f64> = per_trial.iter().map(|(p, _)| p[ci]).collect();
                let adversarial: Vec<f64> = per_trial.iter().map(|(_, a)| a[ci]).collect();
                let report = dominance_report(&adversarial, &plain);
                CheckpointComparison {
                    time,
                    plain,
                    adversarial,
                    report,
                }
            })
            .collect()
    }
}

/// Run one trajectory up to `horizon`, recording the discrepancy at each
/// checkpoint time (the value *at or just after* the checkpoint, i.e. the
/// configuration in force at that instant).
fn discrepancies_at<A: Adversary>(
    initial: Config,
    checkpoints: &[f64],
    horizon: f64,
    protocol_rng: &mut rls_rng::Xoshiro256PlusPlus,
    adversary: &mut A,
    adversary_rng: &mut rls_rng::Xoshiro256PlusPlus,
) -> Vec<f64> {
    let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper()))
        .expect("DML experiment configurations have at least one ball");
    let mut sorted: Vec<(usize, f64)> = checkpoints.iter().copied().enumerate().collect();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));
    let mut out = vec![0.0; checkpoints.len()];
    let mut idx = 0;

    while idx < sorted.len() {
        // Record every checkpoint that the current time has passed.
        while idx < sorted.len() && sim.time() >= sorted[idx].1 {
            out[sorted[idx].0] = sim.tracker().discrepancy();
            idx += 1;
        }
        if idx >= sorted.len() || sim.time() >= horizon && idx >= sorted.len() {
            break;
        }
        if sim.time() >= horizon {
            break;
        }
        let event = sim.step(protocol_rng);
        adversary.after_event(&event, &mut sim, adversary_rng);
    }
    // Any checkpoints beyond the last event time take the final state.
    while idx < sorted.len() {
        out[sorted[idx].0] = sim.tracker().discrepancy();
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoAdversary, RandomDestructiveAdversary};

    fn experiment(trials: usize) -> DmlExperiment {
        DmlExperiment::new(
            Config::all_in_one_bin(8, 64).unwrap(),
            vec![0.5, 1.0, 2.0, 4.0],
            trials,
            1234,
        )
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = DmlExperiment::new(Config::uniform(2, 1).unwrap(), vec![1.0], 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one checkpoint")]
    fn empty_checkpoints_rejected() {
        let _ = DmlExperiment::new(Config::uniform(2, 1).unwrap(), vec![], 1, 1);
    }

    #[test]
    fn adversary_free_comparison_is_symmetric() {
        // With the adversary replaced by a no-op and paired seeds, both runs
        // are identical, so every checkpoint shows zero violation and zero
        // gap.
        let comparisons = experiment(10).run(|_| NoAdversary);
        for c in comparisons {
            assert_eq!(c.plain, c.adversarial);
            assert_eq!(c.report.max_violation, 0.0);
            assert_eq!(c.report.max_cdf_gap, 0.0);
        }
    }

    #[test]
    fn destructive_adversary_dominates_plain_run() {
        // The DML claim: discrepancy with adversary ⪰ discrepancy without.
        // Empirically the violation should be within sampling noise while
        // the gap is clearly positive at intermediate times.
        let comparisons = experiment(60)
            .with_threads(4)
            .run(|_| RandomDestructiveAdversary::new(1, 1.0, None));
        // At every checkpoint the mean adversarial discrepancy is at least
        // the plain one (up to noise), and violations stay small.
        for c in &comparisons {
            assert!(
                c.report.mean_gap > -0.5,
                "adversarial mean below plain at t={}: gap {}",
                c.time,
                c.report.mean_gap
            );
            assert!(
                c.report.max_violation < 0.25,
                "dominance violated at t={}: {}",
                c.time,
                c.report.max_violation
            );
        }
        // And at some intermediate checkpoint the adversary visibly hurts.
        assert!(comparisons.iter().any(|c| c.report.mean_gap > 0.1));
    }

    #[test]
    fn independent_mode_still_shows_dominance_in_means() {
        let comparisons = experiment(60)
            .with_mode(CouplingMode::Independent)
            .with_threads(4)
            .run(|_| RandomDestructiveAdversary::new(1, 1.0, None));
        let total_gap: f64 = comparisons.iter().map(|c| c.report.mean_gap).sum();
        assert!(
            total_gap > 0.0,
            "adversarial runs should be slower on average"
        );
    }
}

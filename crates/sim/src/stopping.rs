//! Stopping conditions for simulation runs.
//!
//! A run has a *goal* (the balance level whose hitting time we measure —
//! perfect balance for Theorem 1, `x`-balance for the Phase-1 lemmas, a
//! target number of overloaded balls for Lemma 15) and optional *budgets*
//! (maximum simulated time / number of activations) that bound runaway runs
//! in tests and benches.

use rls_core::LoadTracker;

/// Goal component of a stopping condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Goal {
    /// Stop when `disc(ℓ) < 1`.
    PerfectBalance,
    /// Stop when `disc(ℓ) ≤ x`.
    XBalanced(f64),
    /// Stop when the number of overloaded balls is at most the threshold
    /// (Lemma 15 stops at `A ≤ n`).
    OverloadedBallsAtMost(u64),
    /// Never stop on a goal; run until a budget is exhausted.
    Never,
}

/// A stopping condition: a goal plus optional budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopWhen {
    goal: Goal,
    max_time: Option<f64>,
    max_activations: Option<u64>,
}

impl StopWhen {
    /// Stop at perfect balance (`disc < 1`).
    pub fn perfectly_balanced() -> Self {
        Self {
            goal: Goal::PerfectBalance,
            max_time: None,
            max_activations: None,
        }
    }

    /// Stop at `x`-balance (`disc ≤ x`).
    pub fn x_balanced(x: f64) -> Self {
        Self {
            goal: Goal::XBalanced(x),
            max_time: None,
            max_activations: None,
        }
    }

    /// Stop when the number of overloaded balls drops to `limit` or below.
    pub fn overloaded_balls_at_most(limit: u64) -> Self {
        Self {
            goal: Goal::OverloadedBallsAtMost(limit),
            max_time: None,
            max_activations: None,
        }
    }

    /// No goal; only budgets stop the run.
    pub fn never() -> Self {
        Self {
            goal: Goal::Never,
            max_time: None,
            max_activations: None,
        }
    }

    /// Add a bound on simulated time.
    pub fn with_max_time(mut self, t: f64) -> Self {
        self.max_time = Some(t);
        self
    }

    /// Add a bound on the number of activations.
    pub fn with_max_activations(mut self, events: u64) -> Self {
        self.max_activations = Some(events);
        self
    }

    /// The goal component.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// Has the goal been reached for the given tracked state?
    pub fn goal_met(&self, tracker: &LoadTracker, _time: f64, _activations: u64) -> bool {
        match self.goal {
            Goal::PerfectBalance => tracker.is_perfectly_balanced(),
            Goal::XBalanced(x) => tracker.is_x_balanced(x),
            Goal::OverloadedBallsAtMost(limit) => tracker.overloaded_balls() <= limit,
            Goal::Never => false,
        }
    }

    /// Has a budget been exhausted?
    pub fn budget_exhausted(&self, time: f64, activations: u64) -> bool {
        if let Some(t) = self.max_time {
            if time >= t {
                return true;
            }
        }
        if let Some(e) = self.max_activations {
            if activations >= e {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_core::Config;

    fn tracker(loads: &[u64]) -> LoadTracker {
        LoadTracker::new(&Config::from_loads(loads.to_vec()).unwrap())
    }

    #[test]
    fn perfect_balance_goal() {
        let stop = StopWhen::perfectly_balanced();
        assert!(stop.goal_met(&tracker(&[3, 3, 3]), 0.0, 0));
        assert!(!stop.goal_met(&tracker(&[4, 3, 2]), 0.0, 0));
        assert_eq!(stop.goal(), Goal::PerfectBalance);
    }

    #[test]
    fn x_balanced_goal() {
        let stop = StopWhen::x_balanced(2.0);
        assert!(stop.goal_met(&tracker(&[5, 3, 3, 1]), 0.0, 0));
        assert!(!stop.goal_met(&tracker(&[6, 3, 2, 1]), 0.0, 0));
    }

    #[test]
    fn overloaded_balls_goal() {
        let stop = StopWhen::overloaded_balls_at_most(2);
        assert!(stop.goal_met(&tracker(&[5, 3, 4, 4]), 0.0, 0));
        assert!(!stop.goal_met(&tracker(&[9, 1, 3, 3]), 0.0, 0));
    }

    #[test]
    fn never_goal_only_budget() {
        let stop = StopWhen::never().with_max_activations(10);
        assert!(!stop.goal_met(&tracker(&[3, 3, 3]), 0.0, 0));
        assert!(stop.budget_exhausted(0.0, 10));
        assert!(!stop.budget_exhausted(0.0, 9));
    }

    #[test]
    fn budgets() {
        let stop = StopWhen::perfectly_balanced()
            .with_max_time(5.0)
            .with_max_activations(100);
        assert!(!stop.budget_exhausted(4.9, 99));
        assert!(stop.budget_exhausted(5.0, 0));
        assert!(stop.budget_exhausted(0.0, 100));
    }

    #[test]
    fn no_budget_never_exhausts() {
        let stop = StopWhen::perfectly_balanced();
        assert!(!stop.budget_exhausted(f64::MAX, u64::MAX));
    }
}

//! Cross-validation of the two simulation engines (tier-1, runs in CI).
//!
//! The superposition engine ([`Simulation`]) and the literal per-ball clock
//! engine ([`ClockEngine`]) implement *the same* continuous-time law, so
//! over many independent trials their stopping-time distributions must be
//! statistically indistinguishable.  This test runs a small `(n, m)` grid
//! and compares the empirical CDFs with a Kolmogorov–Smirnov-style
//! statistic built from `rls_sim::stats`: with 60 samples a side, the
//! two-sample KS critical value at significance 0.001 is
//! `1.95·√(2/60) ≈ 0.356`, so a distance bound of 0.35 both keeps real
//! regressions visible (a variant mix-up or a biased sampler shifts the
//! CDF by far more) and stays deterministic for the fixed seeds used.

use rls_core::{Config, RlsRule};
use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{rng_from_seed, Rng64, RngExt};
use rls_sim::clock::ClockEngine;
use rls_sim::stats::{dominance_report, Summary};
use rls_sim::{RlsPolicy, Simulation, StopWhen};

/// Two-sample Kolmogorov–Smirnov distance `sup_x |F_a(x) − F_b(x)|`.
fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let report = dominance_report(a, b);
    report.max_cdf_gap.max(report.max_violation)
}

fn stopping_times<F: FnMut(u64) -> f64>(trials: u64, mut run: F) -> Vec<f64> {
    (0..trials).map(&mut run).collect()
}

#[test]
fn clock_and_superposition_engines_agree_in_distribution() {
    let trials = 60u64;
    for (grid_idx, &(n, m)) in [(8usize, 64u64), (16, 128)].iter().enumerate() {
        let salt = grid_idx as u64 * 10_000;
        let clock_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(salt + t));
            engine
                .run(
                    &mut rng_from_seed(salt + 1000 + t),
                    StopWhen::perfectly_balanced(),
                )
                .time
        });
        let super_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run(
                &mut rng_from_seed(salt + 2000 + t),
                StopWhen::perfectly_balanced(),
            )
            .time
        });

        let ks = ks_distance(&clock_times, &super_times);
        assert!(
            ks < 0.35,
            "(n={n}, m={m}): KS distance {ks:.3} exceeds the 0.1% critical value — \
             the engines no longer simulate the same law"
        );

        // Means must also agree within Monte-Carlo noise (a location shift
        // could in principle hide under a just-passing KS distance).
        let c = Summary::from_samples(&clock_times);
        let s = Summary::from_samples(&super_times);
        let rel = (c.mean - s.mean).abs() / s.mean;
        assert!(
            rel < 0.25,
            "(n={n}, m={m}): means diverge by {:.1}% (clock {:.4} vs superposition {:.4})",
            rel * 100.0,
            c.mean,
            s.mean
        );
    }
}

/// The pre-Fenwick superposition engine, kept verbatim as a reference: a
/// `balls: Vec<u32>` slot map sampled uniformly (O(m) memory, `u32::MAX`
/// ball cap).  [`Simulation`] now samples "a bin with probability `load/m`"
/// from a Fenwick-indexed load vector instead; the two must simulate the
/// same law.  A tracker-carrying twin lives in
/// `crates/bench/benches/billion.rs` for the E20 throughput comparison —
/// keep the sampling logic of the two in sync.
struct VecEngine {
    cfg: Config,
    balls: Vec<u32>,
    rule: RlsRule,
    time: f64,
    waiting_time: Exponential,
}

impl VecEngine {
    fn new(initial: Config, rule: RlsRule) -> Self {
        let mut balls = Vec::with_capacity(initial.m() as usize);
        for (bin, &load) in initial.loads().iter().enumerate() {
            for _ in 0..load {
                balls.push(bin as u32);
            }
        }
        let waiting_time = Exponential::new(initial.m() as f64).expect("m ≥ 1");
        Self {
            cfg: initial,
            balls,
            rule,
            time: 0.0,
            waiting_time,
        }
    }

    fn step<R: Rng64 + ?Sized>(&mut self, rng: &mut R) {
        self.time += self.waiting_time.sample(rng);
        let ball = rng.next_index(self.balls.len());
        let source = self.balls[ball] as usize;
        let dest = rng.next_index(self.cfg.n());
        if source != dest
            && self
                .rule
                .permits_loads(self.cfg.load(source), self.cfg.load(dest))
        {
            self.cfg
                .apply(rls_core::Move::new(source, dest))
                .expect("permitted move applies");
            self.balls[ball] = dest as u32;
        }
    }

    fn run_until_balanced<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> f64 {
        while !self.cfg.is_perfectly_balanced() {
            self.step(rng);
        }
        self.time
    }
}

/// The tentpole cross-check: Fenwick-sampled stopping times against the
/// old Vec-sampled law, via the same KS-style harness.  Exchangeability
/// makes the two samplers identical in distribution; a bias in the Fenwick
/// rank descent (an off-by-one, a prefix-sum error) would shift the CDF
/// far beyond the critical value.
#[test]
fn fenwick_and_vec_sampling_agree_in_distribution() {
    let trials = 60u64;
    for (grid_idx, &(n, m)) in [(8usize, 64u64), (16, 128)].iter().enumerate() {
        let salt = grid_idx as u64 * 20_000;
        let vec_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut engine = VecEngine::new(cfg, RlsRule::paper());
            engine.run_until_balanced(&mut rng_from_seed(salt + 4000 + t))
        });
        let fenwick_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run(
                &mut rng_from_seed(salt + 5000 + t),
                StopWhen::perfectly_balanced(),
            )
            .time
        });

        let ks = ks_distance(&vec_times, &fenwick_times);
        assert!(
            ks < 0.35,
            "(n={n}, m={m}): KS distance {ks:.3} exceeds the 0.1% critical value — \
             Fenwick sampling no longer matches the uniform-ball law"
        );
        let v = Summary::from_samples(&vec_times);
        let f = Summary::from_samples(&fenwick_times);
        let rel = (v.mean - f.mean).abs() / v.mean;
        assert!(
            rel < 0.25,
            "(n={n}, m={m}): means diverge by {:.1}% (vec {:.4} vs fenwick {:.4})",
            rel * 100.0,
            v.mean,
            f.mean
        );
    }
}

/// The same statistic distinguishes genuinely different laws: the strict
/// variant from a one-over-one-under start has a different stopping-time
/// scale than the `≥` variant from the worst case — a sanity check that
/// the KS bound is not vacuously loose.
#[test]
fn ks_statistic_detects_a_real_distribution_shift() {
    let trials = 40u64;
    let fast = stopping_times(trials, |t| {
        let cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        sim.run(&mut rng_from_seed(t), StopWhen::perfectly_balanced())
            .time
    });
    // Ten times the balls: a clearly different distribution.
    let slow = stopping_times(trials, |t| {
        let cfg = Config::all_in_one_bin(8, 640).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        sim.run(&mut rng_from_seed(t), StopWhen::perfectly_balanced())
            .time
    });
    assert!(ks_distance(&fast, &slow) > 0.35);
}

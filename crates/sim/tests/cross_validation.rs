//! Cross-validation of the two simulation engines (tier-1, runs in CI).
//!
//! The superposition engine ([`Simulation`]) and the literal per-ball clock
//! engine ([`ClockEngine`]) implement *the same* continuous-time law, so
//! over many independent trials their stopping-time distributions must be
//! statistically indistinguishable.  This test runs a small `(n, m)` grid
//! and compares the empirical CDFs with a Kolmogorov–Smirnov-style
//! statistic built from `rls_sim::stats`: with 60 samples a side, the
//! two-sample KS critical value at significance 0.001 is
//! `1.95·√(2/60) ≈ 0.356`, so a distance bound of 0.35 both keeps real
//! regressions visible (a variant mix-up or a biased sampler shifts the
//! CDF by far more) and stays deterministic for the fixed seeds used.

use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::clock::ClockEngine;
use rls_sim::stats::{dominance_report, Summary};
use rls_sim::{RlsPolicy, Simulation, StopWhen};

/// Two-sample Kolmogorov–Smirnov distance `sup_x |F_a(x) − F_b(x)|`.
fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let report = dominance_report(a, b);
    report.max_cdf_gap.max(report.max_violation)
}

fn stopping_times<F: FnMut(u64) -> f64>(trials: u64, mut run: F) -> Vec<f64> {
    (0..trials).map(&mut run).collect()
}

#[test]
fn clock_and_superposition_engines_agree_in_distribution() {
    let trials = 60u64;
    for (grid_idx, &(n, m)) in [(8usize, 64u64), (16, 128)].iter().enumerate() {
        let salt = grid_idx as u64 * 10_000;
        let clock_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut engine = ClockEngine::new(cfg, RlsRule::paper(), &mut rng_from_seed(salt + t));
            engine
                .run(
                    &mut rng_from_seed(salt + 1000 + t),
                    StopWhen::perfectly_balanced(),
                )
                .time
        });
        let super_times = stopping_times(trials, |t| {
            let cfg = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run(
                &mut rng_from_seed(salt + 2000 + t),
                StopWhen::perfectly_balanced(),
            )
            .time
        });

        let ks = ks_distance(&clock_times, &super_times);
        assert!(
            ks < 0.35,
            "(n={n}, m={m}): KS distance {ks:.3} exceeds the 0.1% critical value — \
             the engines no longer simulate the same law"
        );

        // Means must also agree within Monte-Carlo noise (a location shift
        // could in principle hide under a just-passing KS distance).
        let c = Summary::from_samples(&clock_times);
        let s = Summary::from_samples(&super_times);
        let rel = (c.mean - s.mean).abs() / s.mean;
        assert!(
            rel < 0.25,
            "(n={n}, m={m}): means diverge by {:.1}% (clock {:.4} vs superposition {:.4})",
            rel * 100.0,
            c.mean,
            s.mean
        );
    }
}

/// The same statistic distinguishes genuinely different laws: the strict
/// variant from a one-over-one-under start has a different stopping-time
/// scale than the `≥` variant from the worst case — a sanity check that
/// the KS bound is not vacuously loose.
#[test]
fn ks_statistic_detects_a_real_distribution_shift() {
    let trials = 40u64;
    let fast = stopping_times(trials, |t| {
        let cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        sim.run(&mut rng_from_seed(t), StopWhen::perfectly_balanced())
            .time
    });
    // Ten times the balls: a clearly different distribution.
    let slow = stopping_times(trials, |t| {
        let cfg = Config::all_in_one_bin(8, 640).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        sim.run(&mut rng_from_seed(t), StopWhen::perfectly_balanced())
            .time
    });
    assert!(ks_distance(&fast, &slow) > 0.35);
}

//! Property-based tests for the simulation engine: invariants that must
//! hold for every seed, every instance size and every stopping rule.

use proptest::prelude::*;
use rls_core::{Config, RlsRule, RlsVariant};
use rls_rng::rng_from_seed;
use rls_sim::{RlsPolicy, Simulation, StopWhen};

/// Strategy: a small but varied (n, m, seed) instance.
fn instance() -> impl Strategy<Value = (usize, u64, u64)> {
    (2usize..=12, 1u64..=80, 0u64..=1_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Balls are conserved along any trajectory and the final state reported
    /// by the tracker always matches the configuration.
    #[test]
    fn simulation_conserves_balls((n, m, seed) in instance()) {
        let initial = Config::all_in_one_bin(n, m).unwrap();
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = rng_from_seed(seed);
        let outcome = sim.run(
            &mut rng,
            StopWhen::perfectly_balanced().with_max_activations(20_000),
        );
        prop_assert_eq!(sim.config().m(), m);
        prop_assert_eq!(sim.config().loads().iter().sum::<u64>(), m);
        prop_assert!(sim.tracker().matches(sim.config()));
        prop_assert!(outcome.migrations <= outcome.activations);
    }

    /// The discrepancy reported at the end never exceeds the initial
    /// discrepancy (RLS never makes things worse), and reaching the goal
    /// means the configuration really is perfectly balanced.
    #[test]
    fn discrepancy_never_increases((n, m, seed) in instance()) {
        let initial = Config::all_in_one_bin(n, m).unwrap();
        let initial_disc = initial.discrepancy();
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
        let outcome = sim.run(
            &mut rng_from_seed(seed),
            StopWhen::perfectly_balanced().with_max_activations(20_000),
        );
        prop_assert!(outcome.final_discrepancy <= initial_disc + 1e-9);
        if outcome.reached_goal {
            prop_assert!(sim.config().is_perfectly_balanced());
        }
    }

    /// Simulated time is non-decreasing and strictly positive once an event
    /// has happened; the number of activations matches the event count.
    #[test]
    fn time_and_activations_are_consistent((n, m, seed) in instance()) {
        let initial = Config::all_in_one_bin(n, m).unwrap();
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = rng_from_seed(seed);
        let mut last_time = 0.0;
        for k in 1..=50u64 {
            let event = sim.step(&mut rng);
            prop_assert!(event.time >= last_time);
            prop_assert_eq!(event.activations, k);
            last_time = event.time;
        }
        prop_assert_eq!(sim.activations(), 50);
        prop_assert!(sim.time() > 0.0);
    }

    /// Both RLS variants, run with the same seed from the same start, end
    /// with the same total number of balls and valid balance states.
    #[test]
    fn both_variants_are_well_behaved((n, m, seed) in instance()) {
        for variant in [RlsVariant::Geq, RlsVariant::Strict] {
            let initial = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::new(variant))).unwrap();
            let outcome = sim.run(
                &mut rng_from_seed(seed),
                StopWhen::perfectly_balanced().with_max_activations(20_000),
            );
            prop_assert_eq!(sim.config().m(), m);
            prop_assert!(outcome.final_discrepancy >= 0.0);
        }
    }

    /// Deterministic replay: identical seeds produce identical outcomes.
    #[test]
    fn replay_is_exact((n, m, seed) in instance()) {
        let run = || {
            let initial = Config::all_in_one_bin(n, m).unwrap();
            let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
            sim.run(
                &mut rng_from_seed(seed),
                StopWhen::perfectly_balanced().with_max_activations(10_000),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Stopping at x-balance really stops at x-balance (never overshoots the
    /// goal check), for any threshold.
    #[test]
    fn x_balanced_goal_is_respected((n, m, seed) in instance(), x in 0.5f64..10.0) {
        let initial = Config::all_in_one_bin(n, m).unwrap();
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
        let outcome = sim.run(
            &mut rng_from_seed(seed),
            StopWhen::x_balanced(x).with_max_activations(20_000),
        );
        if outcome.reached_goal {
            prop_assert!(sim.config().discrepancy() <= x + 1e-9);
        }
    }
}

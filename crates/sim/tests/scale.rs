//! Tier-1 smoke tests pinning the lifted `u32` ball cap: instances with
//! `m > u32::MAX` must construct and run in `O(n)` memory.
//!
//! Before the Fenwick-indexed refactor, `Simulation::new` materialized a
//! `balls: Vec<u32>` (4 bytes per ball) and returned
//! `SimError::TooManyBalls` for `m > u32::MAX`.  These tests would have
//! failed at construction (or allocated ≥ 16 GiB); with exchangeable-ball
//! sampling over the load vector they run in milliseconds.

use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::{RlsPolicy, Simulation, StopWhen};

const PAST_CAP: u64 = u32::MAX as u64 + 1; // 2^32 balls

#[test]
fn constructs_and_steps_past_the_old_u32_ball_cap() {
    let n = 256usize;
    let cfg = Config::all_in_one_bin(n, PAST_CAP).unwrap();
    let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
    let mut rng = rng_from_seed(1);
    for _ in 0..2000 {
        sim.step(&mut rng);
    }
    assert_eq!(sim.activations(), 2000);
    assert_eq!(sim.config().m(), PAST_CAP, "moves conserve balls");
    assert!(sim.tracker().matches(sim.config()));
    assert!(sim.index().matches(sim.config()));
    // From the all-in-one-bin start nearly every activation migrates.
    assert!(sim.migrations() > 1000, "migrations {}", sim.migrations());
}

#[test]
fn event_budgeted_run_works_past_the_cap() {
    let n = 64usize;
    let per_bin = PAST_CAP / n as u64 + 1;
    let cfg = Config::uniform(n, per_bin).unwrap();
    assert!(cfg.m() > u32::MAX as u64);
    let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
    let outcome = sim.run(
        &mut rng_from_seed(2),
        StopWhen::perfectly_balanced().with_max_activations(500),
    );
    // A uniform start is already perfectly balanced, so the goal is met
    // immediately — the point is that the engine accepted the instance.
    assert!(outcome.reached_goal);
    assert_eq!(sim.config().m(), n as u64 * per_bin);
}

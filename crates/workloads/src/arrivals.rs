//! Arrival processes for dynamic (online) instances.
//!
//! The paper analyses a *static* instance — `m` balls placed once — but the
//! live engine (`rls-live`) superposes the RLS clocks with a stream of ball
//! arrivals and departures.  An [`ArrivalProcess`] describes the *law* of
//! that stream: how arrival epochs are spaced in continuous time, how many
//! balls each epoch injects, and where they land.  Like [`Workload`], the
//! variants are plain serializable values so campaign specs can name them
//! in TOML/JSON grids (`"poisson:2"`, `"bursts:2:16"`, `"hotspot:2:0.5"`).
//!
//! Rates are *per bin*: a process with `rate_per_bin = α` injects `α · n`
//! balls per unit of simulated time into an `n`-bin system, so the same
//! spec string keeps the offered load density constant across a grid's `n`
//! axis.
//!
//! [`Workload`]: crate::Workload

use rls_rng::dist::{Distribution, Exponential};
use rls_rng::{Rng64, RngExt};
use serde::{Deserialize, Serialize};

/// The law of a dynamic arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals of single balls, each placed in a uniformly random
    /// bin — the memoryless baseline.
    Poisson {
        /// Arrivals per bin per unit time.
        rate_per_bin: f64,
    },
    /// Adversarial bursts: arrival *epochs* are Poisson with rate
    /// `α · n / size`, and every epoch injects `size` balls at once (uniform
    /// placement), preserving the mean rate `α · n` while maximizing
    /// instantaneous imbalance.
    Bursts {
        /// Mean arrivals per bin per unit time.
        rate_per_bin: f64,
        /// Balls injected per burst epoch.
        size: u64,
    },
    /// A skewed stream: each arriving ball lands in bin 0 with probability
    /// `bias`, otherwise uniformly — the adversarial hotspot that a static
    /// workload cannot express.
    Hotspot {
        /// Arrivals per bin per unit time.
        rate_per_bin: f64,
        /// Probability an arrival targets bin 0 (clamped to `[0, 1]`).
        bias: f64,
    },
}

impl ArrivalProcess {
    /// A short identifier used in tables and spec strings.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursts { .. } => "bursts",
            ArrivalProcess::Hotspot { .. } => "hotspot",
        }
    }

    /// Mean arrivals per bin per unit time.
    pub fn rate_per_bin(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_bin }
            | ArrivalProcess::Bursts { rate_per_bin, .. }
            | ArrivalProcess::Hotspot { rate_per_bin, .. } => rate_per_bin,
        }
    }

    /// Total mean arrival rate into an `n`-bin system.
    pub fn total_rate(&self, n: usize) -> f64 {
        self.rate_per_bin() * n as f64
    }

    /// Rate of arrival *epochs* in an `n`-bin system (for bursts, epochs
    /// are rarer than balls by the burst size).
    pub fn epoch_rate(&self, n: usize) -> f64 {
        match *self {
            ArrivalProcess::Bursts { size, .. } => self.total_rate(n) / size.max(1) as f64,
            _ => self.total_rate(n),
        }
    }

    /// Number of balls injected at one epoch.
    pub fn epoch_size(&self) -> u64 {
        match *self {
            ArrivalProcess::Bursts { size, .. } => size.max(1),
            _ => 1,
        }
    }

    /// Sample the destination bin of one arriving ball.
    pub fn place<R: Rng64 + ?Sized>(&self, n: usize, rng: &mut R) -> usize {
        match *self {
            ArrivalProcess::Hotspot { bias, .. } if rng.next_bernoulli(bias) => 0,
            _ => rng.next_index(n),
        }
    }

    /// Sample the destination among an explicit id list — the elastic
    /// engines' placement path, where the live bin set is no longer
    /// `0..n`.  The hotspot's privileged bin is `ids[0]` (the live list
    /// keeps the boot-time bin 0 in front until it retires).
    ///
    /// For a dense list `ids == [0, n)` this consumes the exact same
    /// draws as [`place`](Self::place) and returns the same bin, so
    /// churn-free trajectories are unchanged.
    ///
    /// # Panics
    /// Panics if `ids` is empty.
    pub fn place_among<R: Rng64 + ?Sized>(&self, ids: &[u32], rng: &mut R) -> usize {
        match *self {
            ArrivalProcess::Hotspot { bias, .. } if rng.next_bernoulli(bias) => ids[0] as usize,
            _ => ids[rng.next_index(ids.len())] as usize,
        }
    }

    /// Sample the waiting time to the next arrival *epoch* in an `n`-bin
    /// system (`Exp(epoch_rate)` — epochs are Poisson).
    ///
    /// # Panics
    /// Panics if the process fails [`validate`](Self::validate) (the epoch
    /// rate would not be positive).
    pub fn next_epoch_gap<R: Rng64 + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        Exponential::new(self.epoch_rate(n))
            .expect("validated arrival process has a positive epoch rate")
            .sample(rng)
    }

    /// Turn the process into an infinite stream of request epochs — the
    /// load generator's view of the same law the live engine simulates.
    ///
    /// Each yielded [`RequestEpoch`] carries the absolute simulated time of
    /// the epoch and how many requests it injects (`1` for Poisson and
    /// hotspot streams, the burst size for bursts).  A serving benchmark
    /// maps simulated time to wall time by a constant factor to hit a
    /// target request rate while preserving the law's shape.
    pub fn schedule<R: Rng64>(&self, n: usize, rng: R) -> RequestSchedule<R> {
        RequestSchedule {
            process: *self,
            n,
            time: 0.0,
            rng,
        }
    }

    /// Whether the parameters are usable (finite positive rate, valid burst
    /// size / bias).
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate = self.rate_per_bin();
        if !(rate.is_finite() && rate > 0.0) {
            return Err("arrival rate must be finite and positive");
        }
        match *self {
            ArrivalProcess::Bursts { size: 0, .. } => Err("burst size must be at least one"),
            ArrivalProcess::Hotspot { bias, .. } if !(0.0..=1.0).contains(&bias) => {
                Err("hotspot bias must lie in [0, 1]")
            }
            _ => Ok(()),
        }
    }
}

/// One entry of a [`RequestSchedule`]: an arrival epoch in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEpoch {
    /// Absolute simulated time of the epoch.
    pub at: f64,
    /// Requests injected at this epoch (≥ 1).
    pub size: u64,
}

/// Infinite iterator over the arrival epochs of an [`ArrivalProcess`] —
/// see [`ArrivalProcess::schedule`].
#[derive(Debug, Clone)]
pub struct RequestSchedule<R> {
    process: ArrivalProcess,
    n: usize,
    time: f64,
    rng: R,
}

impl<R: Rng64> Iterator for RequestSchedule<R> {
    type Item = RequestEpoch;

    fn next(&mut self) -> Option<RequestEpoch> {
        self.time += self.process.next_epoch_gap(self.n, &mut self.rng);
        Some(RequestEpoch {
            at: self.time,
            size: self.process.epoch_size(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn rates_and_epochs() {
        let p = ArrivalProcess::Poisson { rate_per_bin: 2.0 };
        assert_eq!(p.total_rate(8), 16.0);
        assert_eq!(p.epoch_rate(8), 16.0);
        assert_eq!(p.epoch_size(), 1);

        let b = ArrivalProcess::Bursts {
            rate_per_bin: 2.0,
            size: 4,
        };
        assert_eq!(b.total_rate(8), 16.0);
        assert_eq!(b.epoch_rate(8), 4.0);
        assert_eq!(b.epoch_size(), 4);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_per_bin: 1.0 }.name(),
            "poisson"
        );
        assert_eq!(
            ArrivalProcess::Bursts {
                rate_per_bin: 1.0,
                size: 2
            }
            .name(),
            "bursts"
        );
        assert_eq!(
            ArrivalProcess::Hotspot {
                rate_per_bin: 1.0,
                bias: 0.5
            }
            .name(),
            "hotspot"
        );
    }

    #[test]
    fn hotspot_biases_toward_bin_zero() {
        let hot = ArrivalProcess::Hotspot {
            rate_per_bin: 1.0,
            bias: 0.8,
        };
        let mut rng = rng_from_seed(1);
        let n = 16;
        let hits = (0..10_000).filter(|_| hot.place(n, &mut rng) == 0).count();
        // 0.8 direct + 0.2/16 uniform ≈ 0.8125.
        assert!((hits as f64 / 10_000.0 - 0.8125).abs() < 0.02);
    }

    #[test]
    fn uniform_placement_covers_all_bins() {
        let p = ArrivalProcess::Poisson { rate_per_bin: 1.0 };
        let mut rng = rng_from_seed(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[p.place(8, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn place_among_a_dense_list_is_bit_identical_to_place() {
        let ids: Vec<u32> = (0..16).collect();
        for proc in [
            ArrivalProcess::Poisson { rate_per_bin: 1.0 },
            ArrivalProcess::Hotspot {
                rate_per_bin: 1.0,
                bias: 0.6,
            },
        ] {
            let mut a = rng_from_seed(77);
            let mut b = rng_from_seed(77);
            for _ in 0..2000 {
                assert_eq!(proc.place(16, &mut a), proc.place_among(&ids, &mut b));
            }
        }
    }

    #[test]
    fn place_among_respects_a_sparse_live_set() {
        let ids = [3u32, 9, 4];
        let hot = ArrivalProcess::Hotspot {
            rate_per_bin: 1.0,
            bias: 0.7,
        };
        let mut rng = rng_from_seed(5);
        let mut hits = [0usize; 16];
        for _ in 0..3000 {
            hits[hot.place_among(&ids, &mut rng)] += 1;
        }
        assert_eq!(hits.iter().sum::<usize>(), 3000);
        assert!(
            hits[3] > hits[9] && hits[3] > hits[4],
            "ids[0] is the hotspot"
        );
        for (bin, &h) in hits.iter().enumerate() {
            if ![3usize, 9, 4].contains(&bin) {
                assert_eq!(h, 0, "bin {bin} is not live");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ArrivalProcess::Poisson { rate_per_bin: 1.0 }
            .validate()
            .is_ok());
        assert!(ArrivalProcess::Poisson { rate_per_bin: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Poisson {
            rate_per_bin: f64::NAN
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Bursts {
            rate_per_bin: 1.0,
            size: 0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Hotspot {
            rate_per_bin: 1.0,
            bias: 1.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn schedule_mean_rate_matches_the_law() {
        // Poisson at α = 2 over 8 bins: epochs at rate 16/unit.  10k epochs
        // should span ≈ 625 time units.
        let p = ArrivalProcess::Poisson { rate_per_bin: 2.0 };
        let epochs: Vec<_> = p.schedule(8, rng_from_seed(3)).take(10_000).collect();
        assert_eq!(epochs.len(), 10_000);
        assert!(epochs.windows(2).all(|w| w[0].at < w[1].at));
        assert!(epochs.iter().all(|e| e.size == 1));
        let span = epochs.last().unwrap().at;
        assert!((span - 625.0).abs() < 30.0, "span {span}");

        // Bursts keep the ball rate but thin the epochs by the burst size.
        let b = ArrivalProcess::Bursts {
            rate_per_bin: 2.0,
            size: 4,
        };
        let epochs: Vec<_> = b.schedule(8, rng_from_seed(4)).take(2_500).collect();
        assert!(epochs.iter().all(|e| e.size == 4));
        let span = epochs.last().unwrap().at;
        assert!((span - 625.0).abs() < 60.0, "span {span}");
    }

    #[test]
    fn serde_round_trip() {
        for p in [
            ArrivalProcess::Poisson { rate_per_bin: 2.5 },
            ArrivalProcess::Bursts {
                rate_per_bin: 1.0,
                size: 16,
            },
            ArrivalProcess::Hotspot {
                rate_per_bin: 0.5,
                bias: 0.25,
            },
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}

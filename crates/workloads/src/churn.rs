//! Membership churn processes: the law of bins joining and draining.
//!
//! The elastic engines superpose a [`ChurnProcess`] with the arrival,
//! departure and ring streams of the CTMC.  Like [`ArrivalProcess`]
//! (whose burst/hotspot shapes these profiles mirror), the variants are
//! plain serializable values with spec strings so campaign grids can name
//! them: `"none"`, `"steady:0.1:0.1"`, `"flash:0.05:4"`,
//! `"diurnal:200:0.2:0.2"`, each optionally suffixed `:warm`.
//!
//! Time-varying intensities (the diurnal profile) are realized by **exact
//! thinning**: candidate events fire at the constant majorant rate
//! [`max_rate`](ChurnProcess::max_rate) and are accepted with probability
//! `λ(t) / max_rate` — one bounded draw per candidate, so the stream is a
//! deterministic function of the RNG stream and thread-count invariant in
//! the sharded engine.
//!
//! [`ArrivalProcess`]: crate::ArrivalProcess

use rls_rng::{Rng64, RngExt};
use serde::{Deserialize, Serialize};

/// One resolved churn event: what the thinned candidate turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// `count` bins join; `warm` joins steal a fair share of balls from
    /// the incumbents (the exchangeable-ball law picks the victims).
    Join {
        /// Bins joining at this event.
        count: u64,
        /// Whether the joins are warm-started.
        warm: bool,
    },
    /// `count` bins drain and retire (their balls rebalance first).
    Drain {
        /// Bins draining at this event.
        count: u64,
    },
}

/// The law of a membership churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnProcess {
    /// No churn: the pre-elastic static-membership law.
    None,
    /// Memoryless single-bin churn: joins at rate `join_rate`, drains at
    /// rate `drain_rate` (absolute rates, not per-bin — autoscaler actions
    /// do not scale with fleet size).
    Steady {
        /// Bin joins per unit time.
        join_rate: f64,
        /// Bin drains per unit time.
        drain_rate: f64,
        /// Whether joining bins warm-start.
        warm: bool,
    },
    /// Flash-crowd scaling: events at rate `rate`, each a burst of `size`
    /// joins or `size` drains (fair coin) — the membership analogue of the
    /// bursty arrival process.
    Flash {
        /// Scale events per unit time.
        rate: f64,
        /// Bins per scale event.
        size: u64,
        /// Whether joining bins warm-start.
        warm: bool,
    },
    /// Diurnal scaling: a square wave of period `period` — joins (at
    /// `join_rate`) during the first half-period, drains (at
    /// `drain_rate`) during the second — realized by exact thinning.
    Diurnal {
        /// Length of one scale-up + scale-down cycle.
        period: f64,
        /// Bin joins per unit time while scaling up.
        join_rate: f64,
        /// Bin drains per unit time while scaling down.
        drain_rate: f64,
        /// Whether joining bins warm-start.
        warm: bool,
    },
}

impl ChurnProcess {
    /// A short identifier used in tables and spec strings.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnProcess::None => "none",
            ChurnProcess::Steady { .. } => "steady",
            ChurnProcess::Flash { .. } => "flash",
            ChurnProcess::Diurnal { .. } => "diurnal",
        }
    }

    /// Whether this process ever produces an event.
    pub fn is_none(&self) -> bool {
        matches!(self, ChurnProcess::None)
    }

    /// The constant majorant rate of candidate churn events the engine
    /// superposes into its CTMC total.  Zero for [`None`](Self::None).
    pub fn max_rate(&self) -> f64 {
        match *self {
            ChurnProcess::None => 0.0,
            ChurnProcess::Steady {
                join_rate,
                drain_rate,
                ..
            } => join_rate + drain_rate,
            ChurnProcess::Flash { rate, .. } => rate,
            ChurnProcess::Diurnal {
                join_rate,
                drain_rate,
                ..
            } => join_rate.max(drain_rate),
        }
    }

    /// Resolve a candidate churn event that fired at simulated time `t`.
    ///
    /// Returns `None` when the thinning rejects the candidate (the
    /// time-varying intensity is below the majorant at `t`) — the engine
    /// advances the clock and emits nothing.  Consumes exactly one draw
    /// per candidate regardless of outcome.
    pub fn decide<R: Rng64 + ?Sized>(&self, t: f64, rng: &mut R) -> Option<ChurnEvent> {
        match *self {
            ChurnProcess::None => None,
            ChurnProcess::Steady {
                join_rate,
                drain_rate,
                warm,
            } => {
                let pick = rng.next_f64() * (join_rate + drain_rate);
                if pick < join_rate {
                    Some(ChurnEvent::Join { count: 1, warm })
                } else {
                    Some(ChurnEvent::Drain { count: 1 })
                }
            }
            ChurnProcess::Flash { size, warm, .. } => {
                if rng.next_bool() {
                    Some(ChurnEvent::Join { count: size, warm })
                } else {
                    Some(ChurnEvent::Drain { count: size })
                }
            }
            ChurnProcess::Diurnal {
                period,
                join_rate,
                drain_rate,
                warm,
            } => {
                let phase = (t / period).fract();
                let pick = rng.next_f64() * join_rate.max(drain_rate);
                if phase < 0.5 {
                    (pick < join_rate).then_some(ChurnEvent::Join { count: 1, warm })
                } else {
                    (pick < drain_rate).then_some(ChurnEvent::Drain { count: 1 })
                }
            }
        }
    }

    /// Whether the parameters are usable.
    pub fn validate(&self) -> Result<(), &'static str> {
        let finite_nonneg = |r: f64| -> Result<(), &'static str> {
            (r.is_finite() && r >= 0.0)
                .then_some(())
                .ok_or("churn rates must be finite and non-negative")
        };
        match *self {
            ChurnProcess::None => Ok(()),
            ChurnProcess::Steady {
                join_rate,
                drain_rate,
                ..
            } => {
                finite_nonneg(join_rate)?;
                finite_nonneg(drain_rate)?;
                (join_rate + drain_rate > 0.0)
                    .then_some(())
                    .ok_or("steady churn needs a positive total rate")
            }
            ChurnProcess::Flash { rate, size, .. } => {
                finite_nonneg(rate)?;
                if rate == 0.0 {
                    return Err("flash churn needs a positive rate");
                }
                (size >= 1)
                    .then_some(())
                    .ok_or("flash size must be at least one")
            }
            ChurnProcess::Diurnal {
                period,
                join_rate,
                drain_rate,
                ..
            } => {
                finite_nonneg(join_rate)?;
                finite_nonneg(drain_rate)?;
                if !(period.is_finite() && period > 0.0) {
                    return Err("diurnal period must be finite and positive");
                }
                (join_rate.max(drain_rate) > 0.0)
                    .then_some(())
                    .ok_or("diurnal churn needs a positive peak rate")
            }
        }
    }
}

impl core::fmt::Display for ChurnProcess {
    /// The spec-string form; [`FromStr`](core::str::FromStr) inverts it.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let warm_suffix = |warm: bool| if warm { ":warm" } else { "" };
        match *self {
            ChurnProcess::None => write!(f, "none"),
            ChurnProcess::Steady {
                join_rate,
                drain_rate,
                warm,
            } => write!(f, "steady:{join_rate}:{drain_rate}{}", warm_suffix(warm)),
            ChurnProcess::Flash { rate, size, warm } => {
                write!(f, "flash:{rate}:{size}{}", warm_suffix(warm))
            }
            ChurnProcess::Diurnal {
                period,
                join_rate,
                drain_rate,
                warm,
            } => write!(
                f,
                "diurnal:{period}:{join_rate}:{drain_rate}{}",
                warm_suffix(warm)
            ),
        }
    }
}

impl core::str::FromStr for ChurnProcess {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts: Vec<&str> = s.trim().split(':').map(str::trim).collect();
        let warm = parts.last() == Some(&"warm");
        if warm {
            parts.pop();
        }
        let bad = |what: &str| format!("bad {what} in churn spec `{s}`");
        let num = |v: &str, what: &str| -> Result<f64, String> {
            v.parse::<f64>().map_err(|_| bad(what))
        };
        let process = match parts.as_slice() {
            ["none"] => {
                if warm {
                    return Err("`none` churn takes no `warm` flag".into());
                }
                ChurnProcess::None
            }
            ["steady", j, d] => ChurnProcess::Steady {
                join_rate: num(j, "join rate")?,
                drain_rate: num(d, "drain rate")?,
                warm,
            },
            ["flash", r, size] => ChurnProcess::Flash {
                rate: num(r, "rate")?,
                size: size.parse().map_err(|_| bad("size"))?,
                warm,
            },
            ["diurnal", p, j, d] => ChurnProcess::Diurnal {
                period: num(p, "period")?,
                join_rate: num(j, "join rate")?,
                drain_rate: num(d, "drain rate")?,
                warm,
            },
            _ => return Err(format!("unknown churn spec `{s}`")),
        };
        process.validate().map_err(|e| e.to_string())?;
        Ok(process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn spec_strings_round_trip() {
        for s in [
            "none",
            "steady:0.1:0.2",
            "steady:0.1:0.2:warm",
            "flash:0.05:4",
            "flash:0.05:4:warm",
            "diurnal:200:0.2:0.3",
            "diurnal:200:0.2:0.3:warm",
        ] {
            let c: ChurnProcess = s.parse().unwrap();
            assert!(c.validate().is_ok(), "{s}");
            let back: ChurnProcess = c.to_string().parse().unwrap();
            assert_eq!(back, c, "{s}");
        }
        for bad in [
            "",
            "nope",
            "steady:0.1",
            "steady:x:y",
            "steady:0:0",
            "flash:0:4",
            "flash:0.1:0",
            "diurnal:0:1:1",
            "none:warm",
        ] {
            assert!(bad.parse::<ChurnProcess>().is_err(), "{bad}");
        }
    }

    #[test]
    fn majorant_rates() {
        assert_eq!(ChurnProcess::None.max_rate(), 0.0);
        let steady: ChurnProcess = "steady:0.1:0.3".parse().unwrap();
        assert!((steady.max_rate() - 0.4).abs() < 1e-12);
        let flash: ChurnProcess = "flash:0.05:8".parse().unwrap();
        assert!((flash.max_rate() - 0.05).abs() < 1e-12);
        let diurnal: ChurnProcess = "diurnal:100:0.2:0.5".parse().unwrap();
        assert!((diurnal.max_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn steady_splits_by_rate_share() {
        let c: ChurnProcess = "steady:0.3:0.1".parse().unwrap();
        let mut rng = rng_from_seed(1);
        let joins = (0..10_000)
            .filter(|_| matches!(c.decide(0.0, &mut rng), Some(ChurnEvent::Join { .. })))
            .count();
        // Join share 0.75.
        assert!((joins as f64 / 10_000.0 - 0.75).abs() < 0.02, "{joins}");
    }

    #[test]
    fn flash_bursts_carry_the_size() {
        let c: ChurnProcess = "flash:1:4:warm".parse().unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            match c.decide(0.0, &mut rng).unwrap() {
                ChurnEvent::Join { count, warm } => {
                    assert_eq!(count, 4);
                    assert!(warm);
                }
                ChurnEvent::Drain { count } => assert_eq!(count, 4),
            }
        }
    }

    #[test]
    fn diurnal_thinning_follows_the_square_wave() {
        let c: ChurnProcess = "diurnal:100:0.4:0.2".parse().unwrap();
        let mut rng = rng_from_seed(3);
        // First half-period: only joins (some candidates thinned when the
        // drain rate is the majorant — here join IS the majorant, so all
        // accepted).
        for _ in 0..200 {
            match c.decide(10.0, &mut rng) {
                Some(ChurnEvent::Join { .. }) | None => {}
                other => panic!("scale-up phase produced {other:?}"),
            }
        }
        // Second half-period: only drains; majorant 0.4 vs rate 0.2 means
        // about half the candidates thin away.
        let mut drains = 0;
        let mut thinned = 0;
        for _ in 0..2000 {
            match c.decide(60.0, &mut rng) {
                Some(ChurnEvent::Drain { .. }) => drains += 1,
                None => thinned += 1,
                other => panic!("scale-down phase produced {other:?}"),
            }
        }
        let share = drains as f64 / (drains + thinned) as f64;
        assert!((share - 0.5).abs() < 0.05, "accept share {share}");
    }

    #[test]
    fn serde_round_trip() {
        for c in [
            ChurnProcess::None,
            "steady:0.1:0.2:warm".parse().unwrap(),
            "flash:0.05:4".parse().unwrap(),
            "diurnal:200:0.2:0.3".parse().unwrap(),
        ] {
            let json = serde_json::to_string(&c).unwrap();
            let back: ChurnProcess = serde_json::from_str(&json).unwrap();
            assert_eq!(c, back);
        }
    }
}

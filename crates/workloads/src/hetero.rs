//! Heterogeneity models: ball-weight distributions and bin-speed profiles.
//!
//! The paper analyses unit balls on identical bins; `rls-protocols` models
//! the weighted/speed generalizations offline.  The *online* stack
//! (`rls-live`, `rls-serve`, campaign `dynamic` cells) names its
//! heterogeneity through the two types here:
//!
//! * [`WeightDist`] — the law of an arriving ball's weight.  [`WeightDist::Unit`]
//!   consumes **zero** RNG draws, so a unit-weight run of the weighted
//!   engine replays the exact random stream of the unweighted engine —
//!   the invariant the cross-validation suite in `rls-live` pins.
//! * [`SpeedProfile`] — the deterministic assignment of processing speeds
//!   to bins.  Speeds are integers `≥ 1` so all normalized-load
//!   comparisons (`weight / speed`) stay exact under `u128`
//!   cross-multiplication.
//!
//! Both are plain serializable values with spec-string forms (`unit`,
//! `uniform:1:8`, `pareto:1.5:64`; `uniform`, `two-class:4:0.25`) so
//! campaign grids and the CLI can name them, mirroring [`ArrivalProcess`].
//!
//! [`ArrivalProcess`]: crate::ArrivalProcess

use rls_rng::{Rng64, RngExt};
use serde::{Deserialize, Serialize};

/// The law of an arriving ball's weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightDist {
    /// Every ball has weight `1` — the paper's model.  Sampling consumes
    /// no randomness, so unit runs stay bit-identical to the unweighted
    /// engine.
    Unit,
    /// Integer weights uniform on `[lo, hi]` (inclusive, `1 ≤ lo ≤ hi`).
    UniformInt {
        /// Smallest weight.
        lo: u64,
        /// Largest weight.
        hi: u64,
    },
    /// A truncated Pareto tail: `⌊X⌋` for `X ~ Pareto(alpha)` with scale
    /// `1`, capped at `cap` — mixed-size requests with a heavy tail.
    Pareto {
        /// Tail exponent (`> 0`; smaller is heavier).
        alpha: f64,
        /// Upper truncation (`≥ 1`).
        cap: u64,
    },
}

impl WeightDist {
    /// A short identifier used in tables and spec strings.
    pub fn name(&self) -> &'static str {
        match self {
            WeightDist::Unit => "unit",
            WeightDist::UniformInt { .. } => "uniform",
            WeightDist::Pareto { .. } => "pareto",
        }
    }

    /// Whether this is the unit distribution (the engines skip all
    /// per-ball weight bookkeeping — and its RNG draws — in that case).
    #[inline]
    pub fn is_unit(&self) -> bool {
        matches!(self, WeightDist::Unit)
    }

    /// Sample one ball weight.  [`WeightDist::Unit`] returns `1` without
    /// touching `rng`; every other variant consumes exactly one draw.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            WeightDist::Unit => 1,
            WeightDist::UniformInt { lo, hi } => lo + rng.next_below(hi - lo + 1),
            WeightDist::Pareto { alpha, cap } => {
                // Inverse transform: X = (1 − U)^(−1/α) ≥ 1, truncated.
                let u = rng.next_f64();
                let x = (1.0 - u).powf(-1.0 / alpha);
                if x >= cap as f64 {
                    cap
                } else {
                    (x as u64).max(1)
                }
            }
        }
    }

    /// Whether the parameters are usable.
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            WeightDist::Unit => Ok(()),
            WeightDist::UniformInt { lo, hi } => {
                if lo == 0 {
                    Err("uniform weight lower bound must be at least one")
                } else if lo > hi {
                    Err("uniform weight bounds must satisfy lo <= hi")
                } else {
                    Ok(())
                }
            }
            WeightDist::Pareto { alpha, cap } => {
                if !(alpha.is_finite() && alpha > 0.0) {
                    Err("pareto exponent must be finite and positive")
                } else if cap == 0 {
                    Err("pareto cap must be at least one")
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl core::fmt::Display for WeightDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightDist::Unit => write!(f, "unit"),
            WeightDist::UniformInt { lo, hi } => write!(f, "uniform:{lo}:{hi}"),
            WeightDist::Pareto { alpha, cap } => write!(f, "pareto:{alpha}:{cap}"),
        }
    }
}

impl core::str::FromStr for WeightDist {
    type Err = String;

    /// Parse the spec-string forms: `unit`, `uniform:<lo>:<hi>`,
    /// `pareto:<alpha>:<cap>`.
    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let dist = if s == "unit" {
            WeightDist::Unit
        } else if let Some(rest) = s.strip_prefix("uniform:") {
            let (lo, hi) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{s}` needs the form uniform:<lo>:<hi>"))?;
            WeightDist::UniformInt {
                lo: lo
                    .parse()
                    .map_err(|_| format!("bad weight bound in `{s}`"))?,
                hi: hi
                    .parse()
                    .map_err(|_| format!("bad weight bound in `{s}`"))?,
            }
        } else if let Some(rest) = s.strip_prefix("pareto:") {
            let (alpha, cap) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{s}` needs the form pareto:<alpha>:<cap>"))?;
            WeightDist::Pareto {
                alpha: alpha
                    .parse()
                    .map_err(|_| format!("bad pareto exponent in `{s}`"))?,
                cap: cap
                    .parse()
                    .map_err(|_| format!("bad pareto cap in `{s}`"))?,
            }
        } else {
            return Err(format!(
                "unknown weight distribution `{s}` (unit | uniform:<lo>:<hi> | \
                 pareto:<alpha>:<cap>)"
            ));
        };
        dist.validate().map_err(|e| e.to_string())?;
        Ok(dist)
    }
}

/// The deterministic assignment of processing speeds to bins.
///
/// Profiles are functions of `n` alone (no RNG): two servers booted with
/// the same spec string agree on every bin's speed, which keeps speed
/// vectors out of wire formats everywhere except snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Every bin has speed `1` — the paper's identical-bins model.
    Uniform,
    /// A two-class fleet: the first `⌈fraction · n⌉` bins run at `speed`,
    /// the rest at `1` — the smallest model of capacity skew.
    TwoClass {
        /// Speed of the fast class (`≥ 1`).
        speed: u64,
        /// Fraction of bins in the fast class (clamped to `[0, 1]`).
        fraction: f64,
    },
}

impl SpeedProfile {
    /// A short identifier used in tables and spec strings.
    pub fn name(&self) -> &'static str {
        match self {
            SpeedProfile::Uniform => "uniform",
            SpeedProfile::TwoClass { .. } => "two-class",
        }
    }

    /// Whether every bin runs at speed `1` under this profile.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        match *self {
            SpeedProfile::Uniform => true,
            SpeedProfile::TwoClass {
                speed, fraction, ..
            } => speed == 1 || fraction <= 0.0,
        }
    }

    /// The speed vector for an `n`-bin system.
    pub fn speeds(&self, n: usize) -> Vec<u64> {
        match *self {
            SpeedProfile::Uniform => vec![1; n],
            SpeedProfile::TwoClass { speed, fraction } => {
                let fast = ((fraction.clamp(0.0, 1.0) * n as f64).ceil() as usize).min(n);
                let mut v = vec![1u64; n];
                v[..fast].fill(speed);
                v
            }
        }
    }

    /// Whether the parameters are usable.
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            SpeedProfile::Uniform => Ok(()),
            SpeedProfile::TwoClass { speed, fraction } => {
                if speed == 0 {
                    Err("fast-class speed must be at least one")
                } else if !(0.0..=1.0).contains(&fraction) {
                    Err("fast-class fraction must lie in [0, 1]")
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl core::fmt::Display for SpeedProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpeedProfile::Uniform => write!(f, "uniform"),
            SpeedProfile::TwoClass { speed, fraction } => {
                write!(f, "two-class:{speed}:{fraction}")
            }
        }
    }
}

impl core::str::FromStr for SpeedProfile {
    type Err = String;

    /// Parse the spec-string forms: `uniform`, `two-class:<speed>:<fraction>`.
    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let profile = if s == "uniform" {
            SpeedProfile::Uniform
        } else if let Some(rest) = s.strip_prefix("two-class:") {
            let (speed, fraction) = rest
                .split_once(':')
                .ok_or_else(|| format!("`{s}` needs the form two-class:<speed>:<fraction>"))?;
            SpeedProfile::TwoClass {
                speed: speed
                    .parse()
                    .map_err(|_| format!("bad class speed in `{s}`"))?,
                fraction: fraction
                    .parse()
                    .map_err(|_| format!("bad class fraction in `{s}`"))?,
            }
        } else {
            return Err(format!(
                "unknown speed profile `{s}` (uniform | two-class:<speed>:<fraction>)"
            ));
        };
        profile.validate().map_err(|e| e.to_string())?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn unit_sampling_consumes_no_randomness() {
        let mut rng = rng_from_seed(1);
        let before = rng.state();
        for _ in 0..100 {
            assert_eq!(WeightDist::Unit.sample(&mut rng), 1);
        }
        assert_eq!(rng.state(), before);
    }

    #[test]
    fn uniform_weights_cover_the_range() {
        let dist = WeightDist::UniformInt { lo: 2, hi: 5 };
        let mut rng = rng_from_seed(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let w = dist.sample(&mut rng);
            assert!((2..=5).contains(&w));
            seen[w as usize] = true;
        }
        assert!(seen[2..=5].iter().all(|&s| s));
    }

    #[test]
    fn pareto_weights_are_heavy_tailed_and_capped() {
        let dist = WeightDist::Pareto {
            alpha: 1.1,
            cap: 64,
        };
        let mut rng = rng_from_seed(3);
        let samples: Vec<u64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&w| (1..=64).contains(&w)));
        // A heavy tail at α = 1.1: the cap is actually hit...
        assert!(samples.contains(&64));
        // ...while most of the mass stays small (P[X > 8] = 8^-1.1 ≈ 0.10).
        let big = samples.iter().filter(|&&w| w > 8).count();
        let frac = big as f64 / samples.len() as f64;
        assert!((0.05..0.2).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn speed_profiles_assign_deterministically() {
        assert_eq!(SpeedProfile::Uniform.speeds(4), vec![1, 1, 1, 1]);
        let two = SpeedProfile::TwoClass {
            speed: 4,
            fraction: 0.25,
        };
        assert_eq!(two.speeds(8), vec![4, 4, 1, 1, 1, 1, 1, 1]);
        assert_eq!(two.speeds(1), vec![4]);
        assert!(!two.is_uniform());
        assert!(SpeedProfile::TwoClass {
            speed: 1,
            fraction: 0.5
        }
        .is_uniform());
        assert!(SpeedProfile::TwoClass {
            speed: 9,
            fraction: 0.0
        }
        .is_uniform());
    }

    #[test]
    fn spec_strings_round_trip() {
        for s in ["unit", "uniform:1:8", "pareto:1.5:64"] {
            let d: WeightDist = s.parse().unwrap();
            assert_eq!(d.to_string(), s, "{s}");
        }
        for s in ["uniform", "two-class:4:0.25"] {
            let p: SpeedProfile = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "{s}");
        }
        for bad in [
            "",
            "uniform:0:4",
            "uniform:5:2",
            "uniform:1",
            "pareto:0:8",
            "pareto:1.5:0",
            "nope",
        ] {
            assert!(bad.parse::<WeightDist>().is_err(), "{bad}");
        }
        for bad in ["", "two-class:0:0.5", "two-class:4:1.5", "two-class:4", "x"] {
            assert!(bad.parse::<SpeedProfile>().is_err(), "{bad}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(WeightDist::Unit.validate().is_ok());
        assert!(WeightDist::UniformInt { lo: 0, hi: 3 }.validate().is_err());
        assert!(WeightDist::Pareto {
            alpha: f64::NAN,
            cap: 8
        }
        .validate()
        .is_err());
        assert!(SpeedProfile::TwoClass {
            speed: 0,
            fraction: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        for d in [
            WeightDist::Unit,
            WeightDist::UniformInt { lo: 1, hi: 8 },
            WeightDist::Pareto {
                alpha: 1.5,
                cap: 64,
            },
        ] {
            let json = serde_json::to_string(&d).unwrap();
            let back: WeightDist = serde_json::from_str(&json).unwrap();
            assert_eq!(d, back);
        }
        for p in [
            SpeedProfile::Uniform,
            SpeedProfile::TwoClass {
                speed: 4,
                fraction: 0.25,
            },
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: SpeedProfile = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}

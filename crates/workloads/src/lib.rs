//! # rls-workloads — initial configurations for the experiments
//!
//! The paper's theorems hold from *arbitrary* initial configurations, but
//! each part of the analysis (and each experiment in EXPERIMENTS.md) is
//! exercised hardest by a specific family of starts:
//!
//! * [`Workload::AllInOneBin`] — the worst case the Phase-1 analysis reduces
//!   to via the Destructive Majorization Lemma, and the instance behind the
//!   `Ω(ln n)` lower bound.
//! * [`Workload::OneOverOneUnder`] — the `Ω(n²/m)` lower-bound instance of
//!   Section 4: one bin at `∅ + 1`, one at `∅ − 1`, the rest exactly at `∅`.
//! * [`Workload::UniformRandom`] — every ball thrown into a uniformly random
//!   bin (the classical balls-into-bins start, discrepancy `Θ(√(m ln n / n))`
//!   for large `m/n`).
//! * [`Workload::TwoChoices`] — greedy power-of-two-choices placement, the
//!   start assumed by the Czumaj–Riley–Scheideler protocol (experiment E12).
//! * [`Workload::Zipf`] — a skewed, heavy-tailed placement.
//! * [`Workload::Balanced`] — already perfectly balanced (sanity baseline).
//! * [`Workload::BlockImbalance`] — half the bins at `∅ + x`, half at
//!   `∅ − x`, the shape the Phase-1 proof of Lemma 13 reduces to.
//! * [`Workload::OverUnderPairs`] — a 1-balanced start with `k` over/under
//!   bin pairs, the Phase-3 (Lemma 17) shape.
//!
//! Dynamic (online) instances additionally name an [`ArrivalProcess`] — the
//! law of the ball arrival stream the live engine (`rls-live`) superposes
//! with the RLS clocks: Poisson singles, adversarial bursts, or a hotspot
//! stream biased toward one bin.
//!
//! Workloads and arrival processes are plain serializable values, so
//! campaign specs (`rls-campaign`) can name them in TOML/JSON grids.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arrivals;
mod churn;
mod generators;
mod hetero;

pub use arrivals::{ArrivalProcess, RequestEpoch, RequestSchedule};
pub use churn::{ChurnEvent, ChurnProcess};
pub use generators::{GeneratorError, Workload};
pub use hetero::{SpeedProfile, WeightDist};

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn every_workload_generates_the_requested_sizes() {
        let mut rng = rng_from_seed(1);
        let n = 16;
        let m = 160;
        for w in [
            Workload::AllInOneBin,
            Workload::UniformRandom,
            Workload::TwoChoices,
            Workload::Balanced,
            Workload::OneOverOneUnder,
            Workload::OverUnderPairs { pairs: 3 },
            Workload::Zipf { exponent: 1.2 },
            Workload::BlockImbalance { offset: 4 },
        ] {
            let cfg = w.generate(n, m, &mut rng).unwrap();
            assert_eq!(cfg.n(), n, "{w:?}");
            assert_eq!(cfg.m(), m, "{w:?}");
        }
    }
}

//! Workload generator implementations.

use rls_core::{Config, ConfigError};
use rls_rng::dist::{Distribution, Zipf};
use rls_rng::{Rng64, RngExt};
use serde::{Deserialize, Serialize};

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorError {
    /// The underlying configuration could not be built.
    Config(ConfigError),
    /// The workload's parameters are incompatible with the requested sizes
    /// (e.g. the one-over/one-under instance needs `n ≥ 2` and `m ≥ n`).
    Incompatible(&'static str),
}

impl From<ConfigError> for GeneratorError {
    fn from(e: ConfigError) -> Self {
        GeneratorError::Config(e)
    }
}

impl core::fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeneratorError::Config(e) => write!(f, "configuration error: {e}"),
            GeneratorError::Incompatible(what) => write!(f, "incompatible workload: {what}"),
        }
    }
}

impl std::error::Error for GeneratorError {}

/// A family of initial configurations, parameterized by `(n, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// All `m` balls in bin 0.
    AllInOneBin,
    /// Each ball placed in a uniformly random bin.
    UniformRandom,
    /// Greedy power-of-two-choices: each ball samples two bins and joins the
    /// currently lighter one (ties broken toward the first).
    TwoChoices,
    /// Perfectly balanced: `⌊m/n⌋` or `⌈m/n⌉` everywhere.
    Balanced,
    /// The `Ω(n²/m)` lower-bound instance: one bin at `∅+1`, one at `∅−1`,
    /// the rest exactly at `∅` (requires `n ≥ 2` and `n | m` with `∅ ≥ 1`).
    OneOverOneUnder,
    /// A 1-balanced start with `pairs` bins at `∅ + 1` and `pairs` bins at
    /// `∅ − 1` (the Phase-3 / Lemma-17 shape; requires `n | m`, `∅ ≥ 1` and
    /// `2 · pairs ≤ n`).
    OverUnderPairs {
        /// Number of over/under bin pairs.
        pairs: usize,
    },
    /// Each ball placed in a Zipf-distributed bin (bin 1 hottest).
    Zipf {
        /// Zipf exponent (`0` = uniform, larger = more skew).
        exponent: f64,
    },
    /// Half the bins at `∅ + offset`, half at `∅ − offset` (the Lemma 13
    /// shape).  Requires an even `n`, `n | m` and `offset ≤ ∅`.
    BlockImbalance {
        /// The per-bin offset `x`.
        offset: u64,
    },
}

impl Workload {
    /// A short identifier used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::AllInOneBin => "all-in-one-bin",
            Workload::UniformRandom => "uniform-random",
            Workload::TwoChoices => "two-choices",
            Workload::Balanced => "balanced",
            Workload::OneOverOneUnder => "one-over-one-under",
            Workload::OverUnderPairs { .. } => "over-under-pairs",
            Workload::Zipf { .. } => "zipf",
            Workload::BlockImbalance { .. } => "block-imbalance",
        }
    }

    /// Generate a configuration with `n` bins and `m` balls.
    pub fn generate<R: Rng64 + ?Sized>(
        &self,
        n: usize,
        m: u64,
        rng: &mut R,
    ) -> Result<Config, GeneratorError> {
        if n == 0 {
            return Err(GeneratorError::Config(ConfigError::NoBins));
        }
        match *self {
            Workload::AllInOneBin => Ok(Config::all_in_one_bin(n, m)?),
            Workload::UniformRandom => {
                let mut loads = vec![0u64; n];
                for _ in 0..m {
                    loads[rng.next_index(n)] += 1;
                }
                Ok(Config::from_loads(loads)?)
            }
            Workload::TwoChoices => {
                let mut loads = vec![0u64; n];
                for _ in 0..m {
                    let a = rng.next_index(n);
                    let b = rng.next_index(n);
                    let pick = if loads[b] < loads[a] { b } else { a };
                    loads[pick] += 1;
                }
                Ok(Config::from_loads(loads)?)
            }
            Workload::Balanced => {
                let base = m / n as u64;
                let extra = (m % n as u64) as usize;
                let mut loads = vec![base; n];
                for load in loads.iter_mut().take(extra) {
                    *load += 1;
                }
                Ok(Config::from_loads(loads)?)
            }
            Workload::OneOverOneUnder => {
                if n < 2 {
                    return Err(GeneratorError::Incompatible(
                        "one-over-one-under needs at least two bins",
                    ));
                }
                if !m.is_multiple_of(n as u64) || m / n as u64 == 0 {
                    return Err(GeneratorError::Incompatible(
                        "one-over-one-under needs n | m and m ≥ n",
                    ));
                }
                let avg = m / n as u64;
                let mut loads = vec![avg; n];
                loads[0] = avg + 1;
                loads[1] = avg - 1;
                Ok(Config::from_loads(loads)?)
            }
            Workload::OverUnderPairs { pairs } => {
                if !m.is_multiple_of(n as u64) || m / n as u64 == 0 {
                    return Err(GeneratorError::Incompatible(
                        "over-under-pairs needs n | m and m ≥ n",
                    ));
                }
                if pairs == 0 || 2 * pairs > n {
                    return Err(GeneratorError::Incompatible(
                        "over-under-pairs needs 1 ≤ pairs ≤ n/2",
                    ));
                }
                let avg = m / n as u64;
                let mut loads = vec![avg; n];
                for i in 0..pairs {
                    loads[i] = avg + 1;
                    loads[n - 1 - i] = avg - 1;
                }
                Ok(Config::from_loads(loads)?)
            }
            Workload::Zipf { exponent } => {
                let zipf = Zipf::new(n as u64, exponent)
                    .map_err(|_| GeneratorError::Incompatible("invalid Zipf exponent"))?;
                let mut loads = vec![0u64; n];
                for _ in 0..m {
                    let bin = (zipf.sample(rng) - 1) as usize;
                    loads[bin] += 1;
                }
                Ok(Config::from_loads(loads)?)
            }
            Workload::BlockImbalance { offset } => {
                if !n.is_multiple_of(2) {
                    return Err(GeneratorError::Incompatible(
                        "block imbalance needs an even n",
                    ));
                }
                if !m.is_multiple_of(n as u64) {
                    return Err(GeneratorError::Incompatible("block imbalance needs n | m"));
                }
                let avg = m / n as u64;
                if offset > avg {
                    return Err(GeneratorError::Incompatible(
                        "block imbalance offset exceeds the average load",
                    ));
                }
                let mut loads = vec![0u64; n];
                for (i, load) in loads.iter_mut().enumerate() {
                    *load = if i < n / 2 {
                        avg + offset
                    } else {
                        avg - offset
                    };
                }
                Ok(Config::from_loads(loads)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_rng::rng_from_seed;

    #[test]
    fn names_are_stable() {
        assert_eq!(Workload::AllInOneBin.name(), "all-in-one-bin");
        assert_eq!(Workload::Zipf { exponent: 1.0 }.name(), "zipf");
        assert_eq!(
            Workload::BlockImbalance { offset: 1 }.name(),
            "block-imbalance"
        );
    }

    #[test]
    fn all_in_one_bin_shape() {
        let cfg = Workload::AllInOneBin
            .generate(8, 40, &mut rng_from_seed(1))
            .unwrap();
        assert_eq!(cfg.load(0), 40);
        assert_eq!(cfg.max_load(), 40);
        assert_eq!(cfg.loads()[1..].iter().sum::<u64>(), 0);
    }

    #[test]
    fn uniform_random_conserves_and_spreads() {
        let cfg = Workload::UniformRandom
            .generate(32, 32_000, &mut rng_from_seed(2))
            .unwrap();
        assert_eq!(cfg.m(), 32_000);
        // With 1000 balls per bin on average, discrepancy should be modest.
        assert!(cfg.discrepancy() < 200.0);
        assert!(cfg.discrepancy() > 0.0);
    }

    #[test]
    fn two_choices_is_much_tighter_than_uniform() {
        let mut rng = rng_from_seed(3);
        let uni = Workload::UniformRandom
            .generate(64, 64 * 64, &mut rng)
            .unwrap();
        let two = Workload::TwoChoices
            .generate(64, 64 * 64, &mut rng)
            .unwrap();
        assert!(two.discrepancy() <= uni.discrepancy());
        assert!(
            two.discrepancy() < 6.0,
            "two-choices disc {}",
            two.discrepancy()
        );
    }

    #[test]
    fn balanced_is_perfect() {
        for (n, m) in [(8usize, 64u64), (7, 61), (5, 3)] {
            let cfg = Workload::Balanced
                .generate(n, m, &mut rng_from_seed(4))
                .unwrap();
            assert!(cfg.is_perfectly_balanced(), "n={n} m={m}");
            assert_eq!(cfg.m(), m);
        }
    }

    #[test]
    fn one_over_one_under_shape_and_errors() {
        let cfg = Workload::OneOverOneUnder
            .generate(8, 64, &mut rng_from_seed(5))
            .unwrap();
        assert_eq!(cfg.discrepancy(), 1.0);
        assert_eq!(cfg.overloaded_balls(), 1);
        assert_eq!(cfg.holes(), 1);
        assert!(Workload::OneOverOneUnder
            .generate(1, 10, &mut rng_from_seed(5))
            .is_err());
        assert!(Workload::OneOverOneUnder
            .generate(8, 63, &mut rng_from_seed(5))
            .is_err());
        assert!(Workload::OneOverOneUnder
            .generate(8, 0, &mut rng_from_seed(5))
            .is_err());
    }

    #[test]
    fn over_under_pairs_shape_and_errors() {
        let cfg = Workload::OverUnderPairs { pairs: 2 }
            .generate(8, 64, &mut rng_from_seed(5))
            .unwrap();
        assert_eq!(cfg.discrepancy(), 1.0);
        assert_eq!(cfg.overloaded_balls(), 2);
        assert_eq!(cfg.holes(), 2);
        assert_eq!(cfg.loads(), &[9, 9, 8, 8, 8, 8, 7, 7]);
        assert!(Workload::OverUnderPairs { pairs: 0 }
            .generate(8, 64, &mut rng_from_seed(5))
            .is_err());
        assert!(Workload::OverUnderPairs { pairs: 5 }
            .generate(8, 64, &mut rng_from_seed(5))
            .is_err());
        assert!(Workload::OverUnderPairs { pairs: 2 }
            .generate(8, 63, &mut rng_from_seed(5))
            .is_err());
    }

    #[test]
    fn zipf_is_skewed_toward_bin_zero() {
        let cfg = Workload::Zipf { exponent: 1.5 }
            .generate(64, 10_000, &mut rng_from_seed(6))
            .unwrap();
        assert_eq!(cfg.m(), 10_000);
        assert!(cfg.load(0) > cfg.load(32));
        assert!(cfg.load(0) as f64 > cfg.average());
        assert!(Workload::Zipf { exponent: f64::NAN }
            .generate(4, 4, &mut rng_from_seed(6))
            .is_err());
    }

    #[test]
    fn block_imbalance_shape_and_errors() {
        let cfg = Workload::BlockImbalance { offset: 3 }
            .generate(8, 64, &mut rng_from_seed(7))
            .unwrap();
        assert_eq!(cfg.discrepancy(), 3.0);
        assert_eq!(cfg.load(0), 11);
        assert_eq!(cfg.load(7), 5);
        assert!(Workload::BlockImbalance { offset: 3 }
            .generate(7, 63, &mut rng_from_seed(7))
            .is_err());
        assert!(Workload::BlockImbalance { offset: 3 }
            .generate(8, 60, &mut rng_from_seed(7))
            .is_err());
        assert!(Workload::BlockImbalance { offset: 30 }
            .generate(8, 64, &mut rng_from_seed(7))
            .is_err());
    }

    #[test]
    fn zero_bins_is_rejected_for_all() {
        let mut rng = rng_from_seed(8);
        for w in [
            Workload::AllInOneBin,
            Workload::UniformRandom,
            Workload::Balanced,
        ] {
            assert!(w.generate(0, 10, &mut rng).is_err());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::UniformRandom
            .generate(16, 400, &mut rng_from_seed(9))
            .unwrap();
        let b = Workload::UniformRandom
            .generate(16, 400, &mut rng_from_seed(9))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_display() {
        let e = Workload::OneOverOneUnder
            .generate(1, 1, &mut rng_from_seed(10))
            .unwrap_err();
        assert!(e.to_string().contains("incompatible"));
        let e2 = GeneratorError::Config(ConfigError::NoBins);
        assert!(e2.to_string().contains("configuration error"));
    }
}

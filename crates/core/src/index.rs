//! Fenwick-indexed load vector: exchangeable-ball sampling in O(log n).
//!
//! The paper's process only ever needs *a uniformly random ball* — and
//! balls are exchangeable, so the law of the process depends on the load
//! vector alone.  Picking a uniform ball is therefore the same thing as
//! picking a **bin with probability `ℓ_i / m`**, which a Fenwick tree
//! (binary indexed tree) over the loads answers in `O(log n)` time and
//! `O(n)` memory: draw a uniform rank `r ∈ [0, m)` and descend to the
//! first bin whose cumulative load exceeds `r`.
//!
//! This replaces the engines' historical `balls: Vec<u32>` map (4 bytes
//! *per ball*, hard-capped at `u32::MAX` balls) with a structure whose
//! size is independent of `m`: a billion-ball instance costs the same
//! memory as a thousand-ball one.  The tree is maintained incrementally —
//! `±1` per endpoint of every move, arrival or departure, mirroring the
//! [`LoadTracker`](crate::LoadTracker) hooks — so the engines never pay an
//! `O(n)` rebuild on the hot path.
//!
//! The index is deliberately RNG-free (this crate is purely combinatorial):
//! callers draw the rank themselves and ask [`bin_at`](LoadIndex::bin_at)
//! for the bin, which keeps the random-stream accounting in the engines.

use crate::Config;

/// A Fenwick (binary indexed) tree over the `n` bin loads.
///
/// Supports `O(log n)` rank queries (`bin_at`), prefix sums and point
/// updates, with the total load kept alongside so sampling needs no extra
/// traversal.
///
/// ```
/// use rls_core::{Config, LoadIndex, Move};
///
/// let mut cfg = Config::from_loads(vec![3, 0, 5]).unwrap();
/// let mut idx = LoadIndex::new(&cfg);
/// assert_eq!(idx.total(), 8);
/// // Ranks lay the balls out bin by bin: rank 3 is the first ball of
/// // bin 2 (bin 1 is empty), so a uniform rank picks a bin with
/// // probability load/m — the law of activating a uniform ball.
/// assert_eq!(idx.bin_at(2), 0);
/// assert_eq!(idx.bin_at(3), 2);
///
/// // Keep the index in lock-step with the configuration.
/// cfg.apply(Move::new(2, 1)).unwrap();
/// idx.record_move(2, 1);
/// assert!(idx.matches(&cfg));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadIndex {
    /// 1-based Fenwick array over `capacity` slots; `tree[i]` covers
    /// `lowbit(i)` bins ending at bin `i − 1`.  Slots `len..capacity` are
    /// spare: they carry zero mass and are invisible to rank descent.
    tree: Vec<u64>,
    /// Number of allocated bins (`≤ capacity`); bin ids are `0..len`.
    len: usize,
    /// Starting stride of the descent.  Capacity is kept a power of two,
    /// so this always equals `capacity` and the root node covers the whole
    /// prefix (which is what lets the descent drop its bounds checks).
    top: usize,
    /// Total load `m = Σ ℓ_i` (`u64` end to end — no `u32` ball cap).
    total: u64,
    /// How many O(capacity) rebuilds [`add_bin`](Self::add_bin) has paid.
    /// Capacity doubles on each, so the amortized growth cost stays O(1)
    /// per added bin — a cost model pinned by tests.
    rebuilds: u64,
}

impl LoadIndex {
    /// Build the index for a configuration.
    pub fn new(cfg: &Config) -> Self {
        Self::from_loads(cfg.loads())
    }

    /// Build the index from a raw load vector in `O(n)`.
    ///
    /// # Panics
    /// Panics if `loads` is empty or the total overflows `u64` (a
    /// [`Config`] can never hold either).
    pub fn from_loads(loads: &[u64]) -> Self {
        let n = loads.len();
        assert!(n > 0, "LoadIndex requires at least one bin");
        // Capacity is kept a power of two (padding slots carry zero mass
        // and are invisible to rank descent): the root then covers the
        // whole prefix, so `bin_at_depth` needs no per-level bounds check
        // and its inner loop is branch-free.  `add_bin` preserves the
        // invariant by doubling.
        let cap = n.next_power_of_two();
        let (tree, top, total) = build_tree(loads, cap);
        Self {
            tree,
            len: n,
            top,
            total,
            rebuilds: 0,
        }
    }

    /// Number of allocated bins `n` (including retired bins still holding
    /// their zero-mass slot; the elastic engines mask retirees by load).
    #[inline]
    pub fn n(&self) -> usize {
        self.len
    }

    /// Allocated tree capacity (`≥ n`); grows by doubling in
    /// [`add_bin`](Self::add_bin).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.tree.len() - 1
    }

    /// How many capacity-doubling rebuilds this index has performed.
    #[inline]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Allocate a fresh bin id at the end of the index, seeded with `mass`,
    /// and return it.  Amortized O(log n): when `len == capacity` the tree
    /// is rebuilt at double capacity (O(capacity), counted in
    /// [`rebuilds`](Self::rebuilds)); otherwise the spare slot is claimed
    /// with one point update.
    ///
    /// # Panics
    /// Panics if the total would overflow `u64`.
    pub fn add_bin(&mut self, mass: u64) -> usize {
        if self.len == self.capacity() {
            let mut loads: Vec<u64> = (0..self.len).map(|i| self.load(i)).collect();
            let cap = self.capacity() * 2;
            loads.resize(cap, 0);
            let (tree, top, _) = build_tree(&loads, cap);
            self.tree = tree;
            self.top = top;
            self.rebuilds += 1;
        }
        let bin = self.len;
        self.len += 1;
        if mass > 0 {
            self.add(bin, mass);
        }
        bin
    }

    /// Retire a bin: drain whatever mass it still carries and return it.
    /// The slot keeps its id (ids are never reused) but holds zero mass
    /// forever after, so rank descent can never select it again.
    ///
    /// # Panics
    /// Panics if `bin` is out of range.
    pub fn retire_bin(&mut self, bin: usize) -> u64 {
        let mass = self.load(bin);
        if mass > 0 {
            self.sub(bin, mass);
        }
        mass
    }

    /// Total load `m` (the number of balls).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of the loads of bins `0..bin` (`bin` may equal `n`).
    pub fn prefix(&self, bin: usize) -> u64 {
        debug_assert!(bin <= self.n());
        let mut i = bin;
        let mut sum = 0u64;
        while i > 0 {
            sum += self.tree[i];
            i -= lowbit(i);
        }
        sum
    }

    /// Load of a single bin, recovered from the tree in `O(log n)`.
    pub fn load(&self, bin: usize) -> u64 {
        self.prefix(bin + 1) - self.prefix(bin)
    }

    /// The bin holding the ball of rank `rank` when balls are laid out bin
    /// by bin: the first bin whose cumulative load exceeds `rank`.
    ///
    /// Drawing `rank` uniformly from `[0, m)` therefore selects a bin with
    /// probability `ℓ_i / m` — exactly the law of activating a uniformly
    /// random ball.
    ///
    /// # Panics
    /// Panics if `rank >= total` (in particular whenever the index is
    /// empty).
    pub fn bin_at(&self, rank: u64) -> usize {
        self.bin_at_depth(rank).0
    }

    /// Like [`bin_at`](Self::bin_at), but also reports how many tree
    /// nodes the descent inspected — the telemetry layer's "Fenwick
    /// descent depth" metric.  `bin_at` is a thin wrapper, so the
    /// selection arithmetic is bit-identical whether or not the caller
    /// keeps the depth.
    ///
    /// # Panics
    /// Panics if `rank >= total` (in particular whenever the index is
    /// empty).
    pub fn bin_at_depth(&self, mut rank: u64) -> (usize, u32) {
        assert!(
            rank < self.total,
            "rank {rank} out of range (total {})",
            self.total
        );
        // Capacity is a power of two (`from_loads` pads, `add_bin`
        // doubles), so `top == capacity` and the root node aggregates the
        // *entire* prefix: `tree[top] == total > rank` means the root
        // child is never taken, which in turn bounds `pos + step <= top`
        // at every level — no per-level range check needed.
        let cap = self.capacity();
        debug_assert_eq!(self.top, cap, "capacity is kept a power of two");
        let mut pos = 0usize;
        let mut step = self.top;
        let mut depth = 0u32;
        while step > 0 {
            let next = pos + step;
            let node = self.tree[next];
            // Warm both nodes the next level can touch before the select
            // below resolves: their addresses depend only on `pos`/`step`
            // (not on the compare), so these loads overlap the serial
            // descent chain — a safe-code software prefetch.  The clamp
            // keeps the speculative index in bounds at the root.
            let half = step >> 1;
            if half > 0 {
                std::hint::black_box(self.tree[pos + half]);
                std::hint::black_box(self.tree[(next + half).min(cap)]);
            }
            // Branch-free child select: mask arithmetic instead of a
            // data-dependent branch, so an unpredictable rank costs no
            // pipeline flush on the hot sampling path.
            let take = (node <= rank) as u64;
            rank -= node & take.wrapping_neg();
            pos += step & (take as usize).wrapping_neg();
            step >>= 1;
            depth += 1;
        }
        (pos, depth)
    }

    /// Add one ball to `bin`.
    ///
    /// # Panics
    /// Panics if `bin` is out of range or the total would overflow.
    #[inline]
    pub fn increment(&mut self, bin: usize) {
        self.add(bin, 1);
    }

    /// Remove one ball from `bin`.
    ///
    /// # Panics
    /// Panics if `bin` is out of range; panics in debug builds if the bin
    /// is empty (release builds would silently corrupt the tree, exactly
    /// like the [`LoadTracker`](crate::LoadTracker) contract).
    #[inline]
    pub fn decrement(&mut self, bin: usize) {
        self.sub(bin, 1);
    }

    /// Add an arbitrary mass `delta` to `bin` — the weighted generalization
    /// of [`increment`](Self::increment).  The index is value-agnostic:
    /// over ball counts a delta is `1`, over ball *weights* it is the
    /// weight of the arriving ball, and over rate mass it is the bin's
    /// speed (per ball gaining a clock).
    ///
    /// # Panics
    /// Panics if `bin` is out of range or the total would overflow.
    #[inline]
    pub fn add(&mut self, bin: usize, delta: u64) {
        assert!(bin < self.n(), "bin {bin} outside 0..{}", self.n());
        self.total = self
            .total
            .checked_add(delta)
            .expect("total load fits in u64");
        let cap = self.capacity();
        let mut i = bin + 1;
        while i <= cap {
            self.tree[i] += delta;
            i += lowbit(i);
        }
    }

    /// Remove an arbitrary mass `delta` from `bin` — the weighted
    /// generalization of [`decrement`](Self::decrement).
    ///
    /// # Panics
    /// Panics if `bin` is out of range; panics in debug builds if the bin
    /// holds less than `delta` (release builds would silently corrupt the
    /// tree, exactly like the [`LoadTracker`](crate::LoadTracker)
    /// contract).
    #[inline]
    pub fn sub(&mut self, bin: usize, delta: u64) {
        assert!(bin < self.n(), "bin {bin} outside 0..{}", self.n());
        debug_assert!(
            self.load(bin) >= delta,
            "cannot remove a ball from an empty bin"
        );
        self.total -= delta;
        let cap = self.capacity();
        let mut i = bin + 1;
        while i <= cap {
            self.tree[i] -= delta;
            i += lowbit(i);
        }
    }

    /// Record a ball moving from `from` to `to` (the companion of
    /// [`Config::apply`] and [`LoadTracker::record_move`](crate::LoadTracker::record_move)).
    /// Self-loops must not be recorded.
    #[inline]
    pub fn record_move(&mut self, from: usize, to: usize) {
        debug_assert_ne!(from, to, "self-loops must not be recorded");
        self.decrement(from);
        self.increment(to);
    }

    /// Record a dynamic arrival into `bin` (the companion of
    /// [`Config::add_ball`]).
    #[inline]
    pub fn record_insert(&mut self, bin: usize) {
        self.increment(bin);
    }

    /// Record a dynamic departure from `bin` (the companion of
    /// [`Config::remove_ball`]).
    #[inline]
    pub fn record_remove(&mut self, bin: usize) {
        self.decrement(bin);
    }

    /// Verify the index against a configuration (test/debug helper).
    pub fn matches(&self, cfg: &Config) -> bool {
        self.n() == cfg.n()
            && self.total == cfg.m()
            && (0..cfg.n()).all(|i| self.load(i) == cfg.load(i))
    }
}

#[inline]
fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

/// O(cap) Fenwick construction over `loads` padded to `cap` slots.
fn build_tree(loads: &[u64], cap: usize) -> (Vec<u64>, usize, u64) {
    debug_assert!(loads.len() <= cap);
    let mut tree = vec![0u64; cap + 1];
    let mut total = 0u64;
    for i in 0..cap {
        // Propagation must visit every slot (not just the populated
        // prefix): interior nodes past `loads.len()` still aggregate
        // earlier children.
        let l = loads.get(i).copied().unwrap_or(0);
        tree[i + 1] = tree[i + 1].checked_add(l).expect("total load fits in u64");
        total = total.checked_add(l).expect("total load fits in u64");
        let parent = (i + 1) + lowbit(i + 1);
        if parent <= cap {
            tree[parent] = tree[parent]
                .checked_add(tree[i + 1])
                .expect("total load fits in u64");
        }
    }
    let mut top = 1usize;
    while top * 2 <= cap {
        top *= 2;
    }
    (tree, top, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cumulative_bin(loads: &[u64], rank: u64) -> usize {
        let mut acc = 0u64;
        for (i, &l) in loads.iter().enumerate() {
            acc += l;
            if rank < acc {
                return i;
            }
        }
        unreachable!("rank within total")
    }

    #[test]
    fn bin_at_depth_agrees_with_bin_at_and_is_bounded() {
        let loads = [3u64, 0, 7, 1, 0, 5, 2, 9, 4, 6];
        let idx = LoadIndex::from_loads(&loads);
        let total: u64 = loads.iter().sum();
        for rank in 0..total {
            let (bin, depth) = idx.bin_at_depth(rank);
            assert_eq!(bin, idx.bin_at(rank));
            assert_eq!(bin, cumulative_bin(&loads, rank));
            assert!(depth >= 1, "descent must inspect at least one node");
            assert!(
                depth <= 64 - (loads.len() as u64).leading_zeros() + 1,
                "depth {depth} exceeds tree height for {} bins",
                loads.len()
            );
        }
    }

    #[test]
    fn construction_matches_configuration() {
        let cfg = Config::from_loads(vec![3, 0, 5, 1, 0, 2]).unwrap();
        let idx = LoadIndex::new(&cfg);
        assert!(idx.matches(&cfg));
        assert_eq!(idx.n(), 6);
        assert_eq!(idx.total(), 11);
        assert_eq!(idx.prefix(0), 0);
        assert_eq!(idx.prefix(3), 8);
        assert_eq!(idx.prefix(6), 11);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn empty_load_vector_rejected() {
        let _ = LoadIndex::from_loads(&[]);
    }

    #[test]
    fn bin_at_agrees_with_the_cumulative_scan() {
        let loads = [3u64, 0, 5, 1, 0, 2, 7];
        let idx = LoadIndex::from_loads(&loads);
        for rank in 0..idx.total() {
            assert_eq!(
                idx.bin_at(rank),
                cumulative_bin(&loads, rank),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn bin_at_never_returns_an_empty_bin() {
        let loads = [0u64, 4, 0, 0, 1, 0];
        let idx = LoadIndex::from_loads(&loads);
        for rank in 0..idx.total() {
            assert!(loads[idx.bin_at(rank)] > 0, "rank {rank}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_at_rejects_rank_past_total() {
        let idx = LoadIndex::from_loads(&[2, 1]);
        let _ = idx.bin_at(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_index_cannot_be_sampled() {
        let idx = LoadIndex::from_loads(&[0, 0, 0]);
        let _ = idx.bin_at(0);
    }

    #[test]
    fn updates_track_moves_arrivals_and_departures() {
        let mut cfg = Config::from_loads(vec![4, 1, 0, 3]).unwrap();
        let mut idx = LoadIndex::new(&cfg);

        cfg.apply(crate::Move::new(0, 2)).unwrap();
        idx.record_move(0, 2);
        assert!(idx.matches(&cfg));

        cfg.add_ball(1).unwrap();
        idx.record_insert(1);
        assert!(idx.matches(&cfg));

        cfg.remove_ball(3).unwrap();
        idx.record_remove(3);
        assert!(idx.matches(&cfg));
        assert_eq!(idx.total(), cfg.m());
    }

    #[test]
    fn stays_consistent_over_a_long_random_walk() {
        let mut cfg = Config::all_in_one_bin(13, 77).unwrap();
        let mut idx = LoadIndex::new(&cfg);
        let mut state = 0xDEADBEEFu64;
        for step in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) as usize % cfg.n();
            let b = (state >> 13) as usize % cfg.n();
            match step % 4 {
                0 => {
                    cfg.add_ball(a).unwrap();
                    idx.record_insert(a);
                }
                1 if cfg.load(b) > 0 => {
                    cfg.remove_ball(b).unwrap();
                    idx.record_remove(b);
                }
                _ if a != b && cfg.load(a) > 0 => {
                    cfg.apply(crate::Move::new(a, b)).unwrap();
                    idx.record_move(a, b);
                }
                _ => continue,
            }
            assert!(idx.matches(&cfg), "step {step}");
        }
        // Rank queries still agree with a linear scan after the churn.
        for rank in (0..idx.total()).step_by(17) {
            assert_eq!(idx.bin_at(rank), cumulative_bin(cfg.loads(), rank));
        }
    }

    #[test]
    fn weighted_deltas_generalize_the_unit_updates() {
        // A weight-mass index: bins carry arbitrary mass, not ball counts.
        let mut idx = LoadIndex::from_loads(&[10, 0, 3]);
        idx.add(1, 7);
        assert_eq!(idx.load(1), 7);
        assert_eq!(idx.total(), 20);
        idx.sub(0, 4);
        assert_eq!(idx.load(0), 6);
        assert_eq!(idx.total(), 16);
        // Rank descent walks the weighted mass exactly like ball counts.
        assert_eq!(idx.bin_at(5), 0);
        assert_eq!(idx.bin_at(6), 1);
        assert_eq!(idx.bin_at(12), 1);
        assert_eq!(idx.bin_at(13), 2);
        // Delta-1 is exactly the unit path.
        let mut unit = LoadIndex::from_loads(&[2, 2]);
        let mut delta = unit.clone();
        unit.increment(0);
        delta.add(0, 1);
        assert_eq!(unit, delta);
        unit.decrement(1);
        delta.sub(1, 1);
        assert_eq!(unit, delta);
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn sub_past_the_bin_mass_panics_in_debug() {
        let mut idx = LoadIndex::from_loads(&[3, 1]);
        idx.sub(0, 4);
    }

    #[test]
    fn huge_loads_do_not_overflow() {
        // A four-billion-ball bin: the lifted u32 cap in miniature.
        let big = u32::MAX as u64 + 1;
        let idx = LoadIndex::from_loads(&[big, 1, big]);
        assert_eq!(idx.total(), 2 * big + 1);
        assert_eq!(idx.bin_at(0), 0);
        assert_eq!(idx.bin_at(big - 1), 0);
        assert_eq!(idx.bin_at(big), 1);
        assert_eq!(idx.bin_at(big + 1), 2);
        assert_eq!(idx.bin_at(2 * big), 2);
    }

    #[test]
    fn single_bin_index_works() {
        let mut idx = LoadIndex::from_loads(&[5]);
        assert_eq!(idx.bin_at(4), 0);
        idx.record_insert(0);
        assert_eq!(idx.total(), 6);
        idx.record_remove(0);
        assert_eq!(idx.total(), 5);
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn decrement_on_empty_bin_panics_in_debug() {
        let mut idx = LoadIndex::from_loads(&[1, 0]);
        idx.decrement(1);
    }

    #[test]
    fn add_bin_grows_and_samples_the_new_bin() {
        let mut idx = LoadIndex::from_loads(&[3, 1]);
        assert_eq!(idx.capacity(), 2);
        let bin = idx.add_bin(5);
        assert_eq!(bin, 2);
        assert_eq!(idx.n(), 3);
        assert_eq!(idx.capacity(), 4, "full tree doubles");
        assert_eq!(idx.rebuilds(), 1);
        assert_eq!(idx.total(), 9);
        assert_eq!(idx.load(2), 5);
        // Rank descent reaches the freshly added bin.
        assert_eq!(idx.bin_at(3), 1);
        assert_eq!(idx.bin_at(4), 2);
        assert_eq!(idx.bin_at(8), 2);
        // The spare slot is claimed without another rebuild.
        let bin = idx.add_bin(0);
        assert_eq!(bin, 3);
        assert_eq!(idx.rebuilds(), 1);
        idx.add(3, 2);
        assert_eq!(idx.bin_at(idx.total() - 1), 3);
    }

    #[test]
    fn retire_bin_masks_the_slot_at_zero_rate() {
        let mut idx = LoadIndex::from_loads(&[4, 7, 2]);
        assert_eq!(idx.retire_bin(1), 7);
        assert_eq!(idx.n(), 3, "the id slot survives retirement");
        assert_eq!(idx.total(), 6);
        assert_eq!(idx.load(1), 0);
        for rank in 0..idx.total() {
            assert_ne!(idx.bin_at(rank), 1, "rank {rank} hit a retired bin");
        }
        // Retiring an already-empty bin is a zero-mass no-op.
        assert_eq!(idx.retire_bin(1), 0);
        assert_eq!(idx.total(), 6);
    }

    #[test]
    fn growth_cost_model_is_amortized_doubling() {
        // Pinned cost model: growing 1 → 1024 bins pays exactly
        // log2(1024) = 10 rebuilds, never one per add_bin.
        let mut idx = LoadIndex::from_loads(&[1]);
        for _ in 1..1024 {
            idx.add_bin(1);
        }
        assert_eq!(idx.n(), 1024);
        assert_eq!(idx.capacity(), 1024);
        assert_eq!(idx.rebuilds(), 10);
        assert_eq!(idx.total(), 1024);
        for rank in (0..1024).step_by(97) {
            assert_eq!(idx.bin_at(rank), rank as usize);
        }
    }

    #[test]
    fn elastic_interleaving_agrees_with_brute_force_rebuild() {
        let mut idx = LoadIndex::from_loads(&[5, 0, 3]);
        let mut loads = vec![5u64, 0, 3];
        let mut retired = vec![false; 3];
        let mut state = 0x5EED_CAFEu64;
        for step in 0..600 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = (state >> 33) as usize % loads.len();
            match step % 5 {
                0 => {
                    let mass = (state >> 13) % 9;
                    let bin = idx.add_bin(mass);
                    assert_eq!(bin, loads.len());
                    loads.push(mass);
                    retired.push(false);
                }
                1 if !retired[pick] => {
                    idx.add(pick, 2);
                    loads[pick] += 2;
                }
                2 if !retired[pick] && loads[pick] > 0 => {
                    idx.sub(pick, 1);
                    loads[pick] -= 1;
                }
                3 if !retired[pick] && retired.iter().filter(|r| !**r).count() > 1 => {
                    assert_eq!(idx.retire_bin(pick), loads[pick]);
                    loads[pick] = 0;
                    retired[pick] = true;
                }
                _ => continue,
            }
            let fresh = LoadIndex::from_loads(&loads);
            assert_eq!(idx.total(), fresh.total(), "step {step}");
            for b in 0..loads.len() {
                assert_eq!(idx.load(b), fresh.load(b), "step {step} bin {b}");
            }
            for rank in (0..idx.total()).step_by(11) {
                assert_eq!(idx.bin_at(rank), fresh.bin_at(rank), "step {step}");
            }
        }
        assert!(idx.rebuilds() > 0, "the walk must have exercised growth");
    }
}

//! The Randomized Local Search decision rule.
//!
//! Section 3 of the paper: when a ball in bin `i` is activated and samples a
//! destination bin `i'`, it moves iff `ℓ_i ≥ ℓ_{i'} + 1`.  The protocol of
//! Goldberg [12] and Ganesh et al. [11] instead moves iff `ℓ_i > ℓ_{i'} + 1`;
//! the paper remarks that because balls and bins are identical the two
//! variants have *exactly* the same balancing time, a claim experiment E17
//! verifies empirically.  Both variants are provided.

use serde::{Deserialize, Serialize};

use crate::{Config, Move, MoveClass};

/// Which comparison the protocol uses when deciding to migrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RlsVariant {
    /// Move iff `ℓ_i ≥ ℓ_{i'} + 1` (this paper).  Neutral moves are taken.
    Geq,
    /// Move iff `ℓ_i > ℓ_{i'} + 1` ([12, 11]).  Neutral moves are skipped.
    Strict,
}

impl RlsVariant {
    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            RlsVariant::Geq => "rls-geq",
            RlsVariant::Strict => "rls-strict",
        }
    }
}

/// The RLS decision rule for a fixed variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlsRule {
    variant: RlsVariant,
}

impl RlsRule {
    /// Create the rule for the given variant.
    pub fn new(variant: RlsVariant) -> Self {
        Self { variant }
    }

    /// The rule of this paper (`≥`).
    pub fn paper() -> Self {
        Self::new(RlsVariant::Geq)
    }

    /// The variant in use.
    pub fn variant(&self) -> RlsVariant {
        self.variant
    }

    /// Does the rule permit this move in the given configuration?
    ///
    /// Out-of-range moves are never permitted (rather than an error: the
    /// simulator only produces in-range moves, and a boolean keeps the hot
    /// path branch-cheap).
    pub fn permits(&self, cfg: &Config, mv: Move) -> bool {
        match cfg.classify(mv) {
            Ok(class) => self.permits_class(class),
            Err(_) => false,
        }
    }

    /// Does the rule permit a move of the given class?
    #[inline]
    pub fn permits_class(&self, class: MoveClass) -> bool {
        match self.variant {
            RlsVariant::Geq => class.is_rls_legal(),
            RlsVariant::Strict => class.is_strictly_improving(),
        }
    }

    /// Decide by raw loads — the form used in the simulator's hot loop,
    /// where the loads are already at hand and no bounds check is needed.
    #[inline]
    pub fn permits_loads(&self, load_from: u64, load_to: u64) -> bool {
        match self.variant {
            RlsVariant::Geq => load_from > load_to,
            RlsVariant::Strict => load_from > load_to + 1,
        }
    }

    /// Apply one activation: ball in `source` sampled destination `dest`.
    /// Returns `true` if a migration happened (the configuration is updated
    /// in place), `false` if the ball stayed.
    pub fn step(&self, cfg: &mut Config, source: usize, dest: usize) -> bool {
        let mv = Move::new(source, dest);
        if mv.is_self_loop() || !self.permits(cfg, mv) {
            return false;
        }
        cfg.apply(mv).expect("permitted move must apply");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::from_loads(vec![5, 3, 4, 0]).unwrap()
    }

    #[test]
    fn geq_takes_neutral_moves_strict_does_not() {
        let geq = RlsRule::new(RlsVariant::Geq);
        let strict = RlsRule::new(RlsVariant::Strict);
        let c = cfg();
        // 5 -> 4 is neutral.
        let neutral = Move::new(0, 2);
        assert!(geq.permits(&c, neutral));
        assert!(!strict.permits(&c, neutral));
        // 5 -> 3 is improving for both.
        let improving = Move::new(0, 1);
        assert!(geq.permits(&c, improving));
        assert!(strict.permits(&c, improving));
        // 3 -> 5 is destructive for both.
        let destructive = Move::new(1, 0);
        assert!(!geq.permits(&c, destructive));
        assert!(!strict.permits(&c, destructive));
    }

    #[test]
    fn self_loops_never_move() {
        let geq = RlsRule::paper();
        let mut c = cfg();
        assert!(!geq.step(&mut c, 0, 0));
        assert_eq!(c, cfg());
    }

    #[test]
    fn out_of_range_is_not_permitted() {
        let rule = RlsRule::paper();
        assert!(!rule.permits(&cfg(), Move::new(0, 99)));
    }

    #[test]
    fn permits_loads_matches_permits() {
        let c = cfg();
        for variant in [RlsVariant::Geq, RlsVariant::Strict] {
            let rule = RlsRule::new(variant);
            for from in 0..c.n() {
                for to in 0..c.n() {
                    if from == to {
                        continue;
                    }
                    assert_eq!(
                        rule.permits(&c, Move::new(from, to)),
                        rule.permits_loads(c.load(from), c.load(to)),
                        "variant {variant:?}, {from}->{to}"
                    );
                }
            }
        }
    }

    #[test]
    fn step_applies_permitted_moves() {
        let rule = RlsRule::paper();
        let mut c = cfg();
        assert!(rule.step(&mut c, 0, 3));
        assert_eq!(c.loads(), &[4, 3, 4, 1]);
        // A rejected step leaves the configuration untouched.
        let before = c.clone();
        assert!(!rule.step(&mut c, 1, 0));
        assert_eq!(c, before);
    }

    #[test]
    fn discrepancy_never_increases_under_rls_steps() {
        // The "desirable properties" remark in Section 3, checked on a
        // deterministic exhaustive walk of small configurations.
        let rule = RlsRule::paper();
        let mut c = Config::from_loads(vec![7, 2, 0, 3]).unwrap();
        let mut disc = c.discrepancy();
        for source in 0..c.n() {
            for dest in 0..c.n() {
                if c.load(source) == 0 {
                    continue;
                }
                rule.step(&mut c, source, dest);
                let new_disc = c.discrepancy();
                assert!(new_disc <= disc + 1e-12);
                disc = new_disc;
            }
        }
    }

    #[test]
    fn variant_names() {
        assert_eq!(RlsVariant::Geq.name(), "rls-geq");
        assert_eq!(RlsVariant::Strict.name(), "rls-strict");
        assert_eq!(RlsRule::paper().variant(), RlsVariant::Geq);
    }
}

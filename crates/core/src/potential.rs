//! The Phase-2 potential function of Lemma 16.
//!
//! With `A` the number of overloaded balls, `h` the number of bins with load
//! above the average, `r` the number of bins exactly at the average and `k`
//! the number below it, the paper tracks the potential `Φ = 3A − k − h`.
//! The claim driving Lemma 16 is that while `A > min(h, k)` the expected
//! time to decrease `Φ` by at least 1 is at most `3/∅`, and once
//! `A = min(h, k)` the configuration is already 1-balanced.
//!
//! This module computes the potential and packages the snapshot quantities
//! the experiment harness records along a trajectory.

// detlint: allow-file(D004) the phase-2 potential itself (3A − k − h) is
// integer arithmetic throughout; the only float is the discrepancy
// diagnostic copied into the snapshot for reporting.

use serde::{Deserialize, Serialize};

use crate::Config;

/// All quantities entering the Lemma-16 argument, captured at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase2Snapshot {
    /// Number of overloaded balls `A`.
    pub overloaded_balls: u64,
    /// Bins with load above the average (`h`).
    pub bins_above: usize,
    /// Bins with load exactly at the (integer) average (`r`).
    pub bins_at: usize,
    /// Bins with load below the average (`k`).
    pub bins_below: usize,
    /// The potential `3A − k − h`.
    pub potential: i64,
    /// Current discrepancy.
    pub discrepancy: f64,
}

impl Phase2Snapshot {
    /// Capture the snapshot for a configuration.
    pub fn capture(cfg: &Config) -> Self {
        let counts = cfg.bin_counts();
        let a = cfg.overloaded_balls();
        Self {
            overloaded_balls: a,
            bins_above: counts.above,
            bins_at: counts.at,
            bins_below: counts.below,
            potential: phase2_potential(a, counts.above, counts.below),
            discrepancy: cfg.discrepancy(),
        }
    }

    /// `A > min(h, k)` — the regime in which Lemma 16's claim guarantees
    /// expected potential drop within `3/∅` time.
    pub fn lemma16_applies(&self) -> bool {
        self.overloaded_balls > self.bins_above.min(self.bins_below) as u64
    }

    /// `A = min(h, k)` implies discrepancy ≤ 1 (the observation closing the
    /// Lemma 16 proof).
    pub fn is_one_balanced(&self) -> bool {
        self.discrepancy <= 1.0
    }
}

/// The potential `Φ = 3A − k − h` of Lemma 16.
pub fn phase2_potential(overloaded_balls: u64, bins_above: usize, bins_below: usize) -> i64 {
    3 * overloaded_balls as i64 - bins_below as i64 - bins_above as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Move, RlsRule};

    #[test]
    fn potential_formula() {
        assert_eq!(phase2_potential(5, 2, 3), 15 - 3 - 2);
        assert_eq!(phase2_potential(0, 0, 0), 0);
    }

    #[test]
    fn snapshot_of_balanced_configuration() {
        let cfg = Config::uniform(6, 4).unwrap();
        let s = Phase2Snapshot::capture(&cfg);
        assert_eq!(s.overloaded_balls, 0);
        assert_eq!(s.bins_above, 0);
        assert_eq!(s.bins_below, 0);
        assert_eq!(s.bins_at, 6);
        assert_eq!(s.potential, 0);
        assert!(!s.lemma16_applies());
        assert!(s.is_one_balanced());
    }

    #[test]
    fn snapshot_of_skewed_configuration() {
        // avg 4; loads: 7 (A contributes 3), 1 (hole 3), rest at 4.
        let cfg = Config::from_loads(vec![7, 1, 4, 4, 4, 4]).unwrap();
        let s = Phase2Snapshot::capture(&cfg);
        assert_eq!(s.overloaded_balls, 3);
        assert_eq!(s.bins_above, 1);
        assert_eq!(s.bins_below, 1);
        assert_eq!(s.bins_at, 4);
        assert_eq!(s.potential, 9 - 1 - 1);
        assert!(s.lemma16_applies());
        assert!(!s.is_one_balanced());
    }

    #[test]
    fn a_equals_min_hk_implies_one_balanced() {
        // Loads within {∅-1, ∅, ∅+1}: A = h and k ≥ ... per the paper,
        // A = min(h,k) forces max ≤ ∅+1 and min ≥ ∅-1.
        let cfg = Config::from_loads(vec![5, 3, 4, 4, 4, 4]).unwrap(); // avg 4
        let s = Phase2Snapshot::capture(&cfg);
        assert_eq!(s.overloaded_balls, 1);
        assert_eq!(s.bins_above.min(s.bins_below), 1);
        assert!(!s.lemma16_applies());
        assert!(s.is_one_balanced());
    }

    #[test]
    fn potential_is_bounded_by_three_n_and_nonnegative_in_practice() {
        // For any configuration: A ≥ max(h, k) ⇒ 3A − k − h ≥ A ≥ 0, and
        // A ≤ n · disc so the potential is at most 3n·disc.  Check the
        // non-negativity claim on a sweep of configurations.
        let configs = [
            vec![9, 0, 0],
            vec![4, 4, 4, 0],
            vec![6, 5, 4, 3, 2],
            vec![1, 1, 1, 1, 8],
            vec![2, 2, 2, 2, 2],
        ];
        for loads in configs {
            let cfg = Config::from_loads(loads.clone()).unwrap();
            let s = Phase2Snapshot::capture(&cfg);
            assert!(
                s.potential >= 0,
                "potential negative for {loads:?}: {}",
                s.potential
            );
            assert!(s.overloaded_balls >= s.bins_above as u64);
        }
    }

    #[test]
    fn potential_never_increases_under_rls_moves() {
        // The Lemma 16 proof notes Φ never increases over time; verify over
        // every legal move of a concrete configuration.
        let cfg = Config::from_loads(vec![7, 6, 4, 4, 2, 1]).unwrap(); // avg 4
        let rule = RlsRule::paper();
        let before = Phase2Snapshot::capture(&cfg).potential;
        for from in 0..cfg.n() {
            for to in 0..cfg.n() {
                let mv = Move::new(from, to);
                if from == to || !rule.permits(&cfg, mv) {
                    continue;
                }
                let mut next = cfg.clone();
                next.apply(mv).unwrap();
                let after = Phase2Snapshot::capture(&next).potential;
                assert!(
                    after <= before,
                    "move {mv} raised potential {before} -> {after}"
                );
            }
        }
    }
}

//! Pluggable rebalance policies: what happens when a ball's clock rings.
//!
//! The paper's process is one member of a family (Section 2): a ringing
//! ball samples one or more candidate destinations and a *decision rule*
//! says whether it migrates.  [`RebalancePolicy`] captures that family as
//! a plain enum — RLS in both comparison variants, Mitzenmacher's greedy
//! `d`-choices applied per ring, threshold balancing (fixed and average
//! threshold, Ackermann et al.) and the CRS pair-sampling rule — so the
//! online engines (`rls-live`, `rls-serve`, campaign `dynamic` cells) can
//! run every protocol the offline comparisons already cover.
//!
//! ## Why an enum, not a trait object
//!
//! Policies are part of engine *identity*: they are serialized into live
//! snapshots (format v3) and campaign cell specs, hashed into cache keys,
//! and compared across servers.  An enum gives structural equality,
//! exhaustive serde round-trips and static dispatch on the ring hot path
//! (a match, not a vtable call); a `dyn` policy would give none of those.
//!
//! ## Decision model
//!
//! A ring activates a ball in a *source* bin.  The policy then:
//!
//! 1. draws its candidate destinations through a caller-supplied sampler
//!    (the topology layer: uniform over all bins on the complete graph,
//!    uniform over the source's neighbours otherwise) — greedy-`d` draws
//!    `d`, every other policy draws one;
//! 2. keeps the least-loaded candidate (first draw wins ties, keeping the
//!    decision a pure function of the random stream);
//! 3. applies its pair rule ([`permits_loads`](RebalancePolicy::permits_loads))
//!    to decide whether the ball moves there.
//!
//! Every step is `O(d · cost(sample) + d · cost(load))`, i.e. `O(log n)`
//! for the engines (both the Fenwick [`LoadIndex`](crate::LoadIndex) and a
//! raw load vector answer a load query in at most `O(log n)`).

use serde::{Deserialize, Serialize};

use crate::{RlsRule, RlsVariant};

/// The global quantities a ring decision may consult (`O(1)` to produce
/// from either a [`Config`](crate::Config) or a
/// [`LoadIndex`](crate::LoadIndex)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingContext {
    /// Number of bins.
    pub n: usize,
    /// Current total ball count (the average-threshold policy compares
    /// against `⌈m/n⌉`).
    pub m: u64,
}

/// Outcome of one ring decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingDecision {
    /// The chosen destination (`None` when the sampler produced no
    /// candidate at all — an isolated vertex in a sparse topology).
    pub dest: Option<usize>,
    /// Whether the ball migrates there.
    pub moved: bool,
}

/// A bin's heterogeneous state: its total ball weight and its speed.
///
/// Unit instances are the special case `weight = load, speed = 1`; the
/// weighted pair rules below reduce *exactly* to the unit rules there, so
/// the heterogeneous decision path is a strict generalization of
/// [`RebalancePolicy::permits_loads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinState {
    /// Total weight of the balls in the bin.
    pub weight: u64,
    /// Processing speed of the bin (`≥ 1`; unit instances use `1`).
    pub speed: u64,
}

impl BinState {
    /// The unit-instance state of a bin holding `load` balls.
    #[inline]
    pub fn unit(load: u64) -> Self {
        Self {
            weight: load,
            speed: 1,
        }
    }

    /// Exact comparison of normalized loads: is `self.weight / self.speed`
    /// strictly below `other.weight / other.speed`?  Evaluated by `u128`
    /// cross-multiplication, so no rounding can reorder two bins.
    #[inline]
    pub fn normalized_lt(&self, other: &BinState) -> bool {
        (self.weight as u128) * (other.speed as u128)
            < (other.weight as u128) * (self.speed as u128)
    }
}

/// The global quantities a *weighted* ring decision may consult — the
/// heterogeneous counterpart of [`RingContext`] (the average-threshold
/// policy compares normalized load against `⌈W · s_i / S⌉`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeteroRingContext {
    /// Number of bins.
    pub n: usize,
    /// Total ball weight `W = Σ W_i`.
    pub total_weight: u64,
    /// Total bin speed `S = Σ s_i` (`≥ n` since every speed is `≥ 1`).
    pub total_speed: u64,
}

/// A rebalance decision rule, applied once per ring.
///
/// ```
/// use rls_core::{RebalancePolicy, RingContext};
///
/// let ctx = RingContext { n: 4, m: 12 };
/// // RLS (this paper): move iff the source is strictly fuller.
/// assert!(RebalancePolicy::rls().permits_loads(ctx, 5, 4));
/// assert!(!RebalancePolicy::rls().permits_loads(ctx, 4, 4));
/// // Average threshold: move blindly iff the source exceeds ⌈m/n⌉ = 3.
/// assert!(RebalancePolicy::ThresholdAvg.permits_loads(ctx, 4, 9));
/// // Round-trips through its spec string.
/// let p: RebalancePolicy = "greedy-2".parse().unwrap();
/// assert_eq!(p.to_string(), "greedy-2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalancePolicy {
    /// Randomized Local Search: one candidate, move iff the RLS rule
    /// permits (`≥` for [`RlsVariant::Geq`], strict `>` for
    /// [`RlsVariant::Strict`]).
    Rls {
        /// Which comparison variant decides.
        variant: RlsVariant,
    },
    /// Greedy `d`-choices per ring (Mitzenmacher): sample `d` candidates
    /// with replacement, move to the least loaded of them iff that is an
    /// RLS-legal move (`d = 1` is exactly RLS `≥`).
    GreedyD {
        /// Candidates sampled per ring (`d ≥ 1`).
        d: u32,
    },
    /// Fixed-threshold balancing (Ackermann et al.): move *blindly* to the
    /// sampled candidate iff the source load exceeds `threshold` — the
    /// destination's load is never inspected.
    ThresholdFixed {
        /// The absolute load threshold `T`.
        threshold: u64,
    },
    /// Average-threshold balancing: move blindly iff the source load
    /// exceeds `⌈m/n⌉` (requires global knowledge of the average).
    ThresholdAvg,
    /// CRS pair-sampling applied in ring orientation (Czumaj, Riley,
    /// Scheideler): the ringing bin and the sampled candidate form the
    /// pair, and the ball moves iff that is strictly improving
    /// (`ℓ_src ≥ ℓ_dst + 2`).
    CrsPair,
}

impl RebalancePolicy {
    /// The paper's default: RLS with the `≥` rule.
    pub fn rls() -> Self {
        RebalancePolicy::Rls {
            variant: RlsVariant::Geq,
        }
    }

    /// Check the parameterization (greedy-`d` needs at least one choice).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            RebalancePolicy::GreedyD { d: 0 } => {
                Err("greedy-d needs at least one choice (d ≥ 1)".to_string())
            }
            _ => Ok(()),
        }
    }

    /// How many candidate destinations one ring samples.
    #[inline]
    pub fn choices(&self) -> usize {
        match self {
            RebalancePolicy::GreedyD { d } => *d as usize,
            _ => 1,
        }
    }

    /// The pair rule: would this policy move a ball from a source with
    /// load `source_load` to a destination with load `dest_load`?
    ///
    /// This is also the decision applied when an external caller (the
    /// serving layer, trace replay) pins the destination explicitly — for
    /// greedy-`d` the pinned destination plays the role of the chosen best
    /// candidate, so replaying a recorded `(source, dest, moved)` ring
    /// reproduces the original decision for every policy.
    #[inline]
    pub fn permits_loads(&self, ctx: RingContext, source_load: u64, dest_load: u64) -> bool {
        match self {
            RebalancePolicy::Rls { variant } => {
                RlsRule::new(*variant).permits_loads(source_load, dest_load)
            }
            RebalancePolicy::GreedyD { .. } => source_load > dest_load,
            RebalancePolicy::ThresholdFixed { threshold } => source_load > *threshold,
            RebalancePolicy::ThresholdAvg => source_load > ctx.m.div_ceil(ctx.n as u64),
            RebalancePolicy::CrsPair => source_load > dest_load + 1,
        }
    }

    /// The weighted pair rule: would this policy move a ball of weight
    /// `ball` from a source in state `source` to a destination in state
    /// `dest`?
    ///
    /// Every rule compares *normalized* loads (`weight / speed`) exactly,
    /// via `u128` cross-multiplication:
    ///
    /// * RLS `≥` and greedy-`d` move iff the destination would not end up
    ///   strictly above the source: `(W_dst + w)·s_src ≤ W_src·s_dst`;
    /// * RLS strict and CRS pair move iff the destination stays strictly
    ///   below even after receiving the ball;
    /// * fixed threshold moves iff the source's normalized load exceeds
    ///   `T`: `W_src > T·s_src`;
    /// * average threshold moves iff `W_src > ⌈W·s_src / S⌉` — the
    ///   speed-scaled share of the total weight.
    ///
    /// On unit instances (`weight = load`, `speed = 1`, `ball = 1`) each
    /// rule is *identical* to [`permits_loads`](Self::permits_loads), which
    /// the cross-validation suite in `rls-live` pins bit-for-bit.
    #[inline]
    pub fn permits_weighted(
        &self,
        ctx: HeteroRingContext,
        source: BinState,
        dest: BinState,
        ball: u64,
    ) -> bool {
        let landed = (dest.weight as u128 + ball as u128) * source.speed as u128;
        let src = (source.weight as u128) * (dest.speed as u128);
        match self {
            RebalancePolicy::Rls {
                variant: RlsVariant::Geq,
            }
            | RebalancePolicy::GreedyD { .. } => landed <= src,
            RebalancePolicy::Rls {
                variant: RlsVariant::Strict,
            }
            | RebalancePolicy::CrsPair => landed < src,
            RebalancePolicy::ThresholdFixed { threshold } => {
                source.weight as u128 > (*threshold as u128) * (source.speed as u128)
            }
            RebalancePolicy::ThresholdAvg => {
                let share = ((ctx.total_weight as u128) * (source.speed as u128))
                    .div_ceil(ctx.total_speed.max(1) as u128);
                source.weight as u128 > share
            }
        }
    }

    /// Execute one *weighted* ring decision — the heterogeneous
    /// counterpart of [`decide`](Self::decide).  The candidate set is
    /// drawn through `sample_dest` exactly as in the unit path (same
    /// number of draws, so the random stream stays aligned), the
    /// least-*normalized* candidate wins (first draw wins exact ties,
    /// compared by `u128` cross-multiplication), and the weighted pair
    /// rule decides the migration of a ball of weight `ball`.
    ///
    /// `state_of` answers the [`BinState`] of a candidate bin (candidates
    /// equal to `source` are priced at `source_state` without a lookup —
    /// and never move, exactly like the unit path's self-loop rings).
    pub fn decide_weighted<S, F>(
        &self,
        ctx: HeteroRingContext,
        source: usize,
        source_state: BinState,
        ball: u64,
        mut sample_dest: S,
        state_of: F,
    ) -> RingDecision
    where
        S: FnMut() -> Option<usize>,
        F: Fn(usize) -> BinState,
    {
        let mut best: Option<(usize, BinState)> = None;
        for _ in 0..self.choices() {
            let Some(cand) = sample_dest() else {
                continue;
            };
            let state = if cand == source {
                source_state
            } else {
                state_of(cand)
            };
            if best.is_none_or(|(_, b)| state.normalized_lt(&b)) {
                best = Some((cand, state));
            }
        }
        let Some((dest, dest_state)) = best else {
            return RingDecision {
                dest: None,
                moved: false,
            };
        };
        RingDecision {
            dest: Some(dest),
            moved: dest != source && self.permits_weighted(ctx, source_state, dest_state, ball),
        }
    }

    /// Execute one ring decision: draw the candidate set through
    /// `sample_dest`, keep the least-loaded candidate and apply the pair
    /// rule.  `load_of` answers the load of a candidate bin (candidates
    /// equal to `source` are priced at `source_load` without a lookup —
    /// and never move, exactly like today's self-loop rings).
    ///
    /// `sample_dest` closes over the caller's RNG (this crate stays
    /// RNG-free, like [`LoadIndex`](crate::LoadIndex)) and may return
    /// `None` (isolated vertex); a ring with no candidate at all decides
    /// `dest: None, moved: false`.
    pub fn decide<S, L>(
        &self,
        ctx: RingContext,
        source: usize,
        source_load: u64,
        mut sample_dest: S,
        load_of: L,
    ) -> RingDecision
    where
        S: FnMut() -> Option<usize>,
        L: Fn(usize) -> u64,
    {
        let mut best: Option<(usize, u64)> = None;
        for _ in 0..self.choices() {
            let Some(cand) = sample_dest() else {
                continue;
            };
            let load = if cand == source {
                source_load
            } else {
                load_of(cand)
            };
            if best.is_none_or(|(_, b)| load < b) {
                best = Some((cand, load));
            }
        }
        let Some((dest, dest_load)) = best else {
            return RingDecision {
                dest: None,
                moved: false,
            };
        };
        RingDecision {
            dest: Some(dest),
            moved: dest != source && self.permits_loads(ctx, source_load, dest_load),
        }
    }
}

impl core::fmt::Display for RebalancePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RebalancePolicy::Rls {
                variant: RlsVariant::Geq,
            } => write!(f, "rls"),
            RebalancePolicy::Rls {
                variant: RlsVariant::Strict,
            } => write!(f, "rls-strict"),
            RebalancePolicy::GreedyD { d } => write!(f, "greedy-{d}"),
            RebalancePolicy::ThresholdFixed { threshold } => write!(f, "threshold-{threshold}"),
            RebalancePolicy::ThresholdAvg => write!(f, "threshold-avg"),
            RebalancePolicy::CrsPair => write!(f, "crs-pair"),
        }
    }
}

impl core::str::FromStr for RebalancePolicy {
    type Err = String;

    /// Parse the spec-string forms used by the CLI and campaign grids:
    /// `rls` / `rls-geq`, `rls-strict`, `greedy-<d>`, `threshold-avg`,
    /// `threshold-<T>`, `crs` / `crs-pair`.
    fn from_str(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let policy = match s {
            "rls" | "rls-geq" => RebalancePolicy::rls(),
            "rls-strict" => RebalancePolicy::Rls {
                variant: RlsVariant::Strict,
            },
            "threshold-avg" | "threshold-average" => RebalancePolicy::ThresholdAvg,
            "crs" | "crs-pair" => RebalancePolicy::CrsPair,
            other => {
                if let Some(d) = other.strip_prefix("greedy-") {
                    let d: u32 = d
                        .parse()
                        .map_err(|_| format!("bad choice count in `{other}`"))?;
                    let policy = RebalancePolicy::GreedyD { d };
                    policy.validate()?;
                    policy
                } else if let Some(t) = other.strip_prefix("threshold-") {
                    RebalancePolicy::ThresholdFixed {
                        threshold: t
                            .parse()
                            .map_err(|_| format!("bad threshold in `{other}`"))?,
                    }
                } else {
                    return Err(format!(
                        "unknown policy `{other}` (rls | rls-strict | greedy-<d> | \
                         threshold-avg | threshold-<T> | crs-pair)"
                    ));
                }
            }
        };
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize, m: u64) -> RingContext {
        RingContext { n, m }
    }

    /// A sampler that yields a fixed candidate script.
    fn scripted(candidates: &[usize]) -> impl FnMut() -> Option<usize> + '_ {
        let mut i = 0;
        move || {
            let cand = candidates[i];
            i += 1;
            Some(cand)
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for s in [
            "rls",
            "rls-strict",
            "greedy-1",
            "greedy-2",
            "greedy-8",
            "threshold-avg",
            "threshold-5",
            "crs-pair",
        ] {
            let p: RebalancePolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "{s}");
            let again: RebalancePolicy = p.to_string().parse().unwrap();
            assert_eq!(again, p);
        }
        assert_eq!(
            "rls-geq".parse::<RebalancePolicy>().unwrap(),
            RebalancePolicy::rls()
        );
        assert_eq!(
            "threshold-average".parse::<RebalancePolicy>().unwrap(),
            RebalancePolicy::ThresholdAvg
        );
        assert_eq!(
            "crs".parse::<RebalancePolicy>().unwrap(),
            RebalancePolicy::CrsPair
        );
        for bad in ["", "greedy-", "greedy-0", "greedy-x", "threshold-", "nope"] {
            assert!(bad.parse::<RebalancePolicy>().is_err(), "{bad}");
        }
    }

    #[test]
    fn validate_rejects_zero_choices() {
        assert!(RebalancePolicy::GreedyD { d: 0 }.validate().is_err());
        assert!(RebalancePolicy::GreedyD { d: 1 }.validate().is_ok());
        assert!(RebalancePolicy::rls().validate().is_ok());
    }

    #[test]
    fn pair_rules_match_their_protocols() {
        let c = ctx(4, 12); // average 3, ⌈m/n⌉ = 3
        let rls = RebalancePolicy::rls();
        assert!(rls.permits_loads(c, 5, 4)); // neutral: Geq takes it
        assert!(!rls.permits_loads(c, 4, 4));
        let strict = RebalancePolicy::Rls {
            variant: RlsVariant::Strict,
        };
        assert!(!strict.permits_loads(c, 5, 4)); // neutral: strict skips
        assert!(strict.permits_loads(c, 6, 4));

        let greedy = RebalancePolicy::GreedyD { d: 2 };
        assert!(greedy.permits_loads(c, 5, 4));
        assert!(!greedy.permits_loads(c, 4, 4));

        // Thresholds never inspect the destination.
        let fixed = RebalancePolicy::ThresholdFixed { threshold: 4 };
        assert!(fixed.permits_loads(c, 5, 100));
        assert!(!fixed.permits_loads(c, 4, 0));
        assert!(RebalancePolicy::ThresholdAvg.permits_loads(c, 4, 100));
        assert!(!RebalancePolicy::ThresholdAvg.permits_loads(c, 3, 0));

        // CRS: strictly improving pairs only.
        assert!(RebalancePolicy::CrsPair.permits_loads(c, 6, 4));
        assert!(!RebalancePolicy::CrsPair.permits_loads(c, 5, 4));
    }

    #[test]
    fn greedy_one_equals_rls_geq() {
        let c = ctx(8, 40);
        for src in 0..12u64 {
            for dst in 0..12u64 {
                assert_eq!(
                    RebalancePolicy::GreedyD { d: 1 }.permits_loads(c, src, dst),
                    RebalancePolicy::rls().permits_loads(c, src, dst),
                    "{src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn decide_picks_the_least_loaded_candidate() {
        let loads = [9u64, 3, 7, 5];
        let c = ctx(4, 24);
        // Candidates scripted as bins 2 then 1 then 3: greedy-3 must pick
        // bin 1 (load 3).
        let decision =
            RebalancePolicy::GreedyD { d: 3 }
                .decide(c, 0, loads[0], scripted(&[2, 1, 3]), |b| loads[b]);
        assert_eq!(decision.dest, Some(1));
        assert!(decision.moved);
    }

    #[test]
    fn decide_handles_self_loops_and_missing_candidates() {
        let loads = [9u64, 3];
        let c = ctx(2, 12);
        // Self-loop candidate: counted, never moves.
        let decision = RebalancePolicy::rls().decide(c, 0, loads[0], || Some(0), |b| loads[b]);
        assert_eq!(decision.dest, Some(0));
        assert!(!decision.moved);
        // No candidate at all (isolated vertex).
        let decision = RebalancePolicy::rls().decide(c, 0, loads[0], || None, |b| loads[b]);
        assert_eq!(decision.dest, None);
        assert!(!decision.moved);
    }

    #[test]
    fn first_draw_wins_ties() {
        let loads = [9u64, 4, 4];
        let c = ctx(3, 17);
        let decision =
            RebalancePolicy::GreedyD { d: 2 }
                .decide(c, 0, loads[0], scripted(&[1, 2]), |b| loads[b]);
        assert_eq!(decision.dest, Some(1), "ties keep the first candidate");
        assert!(decision.moved);
    }

    fn all_policies() -> [RebalancePolicy; 7] {
        [
            RebalancePolicy::rls(),
            RebalancePolicy::Rls {
                variant: RlsVariant::Strict,
            },
            RebalancePolicy::GreedyD { d: 1 },
            RebalancePolicy::GreedyD { d: 3 },
            RebalancePolicy::ThresholdFixed { threshold: 4 },
            RebalancePolicy::ThresholdAvg,
            RebalancePolicy::CrsPair,
        ]
    }

    #[test]
    fn weighted_rules_reduce_to_unit_rules() {
        // On unit instances (weight = load, speed = 1, ball = 1) the
        // weighted pair rule must agree with permits_loads for every
        // policy and every load pair — the invariant the live differential
        // suite pins end to end.
        for policy in all_policies() {
            for n in [2usize, 5] {
                for src in 0..10u64 {
                    for dst in 0..10u64 {
                        let m = src + dst + 6;
                        let unit = policy.permits_loads(ctx(n, m), src, dst);
                        let weighted = policy.permits_weighted(
                            HeteroRingContext {
                                n,
                                total_weight: m,
                                total_speed: n as u64,
                            },
                            BinState::unit(src),
                            BinState::unit(dst),
                            1,
                        );
                        assert_eq!(unit, weighted, "{policy} {src}->{dst} (n={n}, m={m})");
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_rules_compare_normalized_loads() {
        let c = HeteroRingContext {
            n: 2,
            total_weight: 30,
            total_speed: 5,
        };
        let fast = BinState {
            weight: 20,
            speed: 4,
        }; // normalized 5
        let slow = BinState {
            weight: 10,
            speed: 1,
        }; // normalized 10
           // RLS: a weight-4 ball may flow from the slow bin to the fast one
           // ((20+4)·1 ≤ 10·4) but never the other way.
        assert!(RebalancePolicy::rls().permits_weighted(c, slow, fast, 4));
        assert!(!RebalancePolicy::rls().permits_weighted(c, fast, slow, 4));
        // A ball too heavy to keep the destination at or below the source
        // stays put: (20+21)·1 > 10·4.
        assert!(!RebalancePolicy::rls().permits_weighted(c, slow, fast, 21));
        // Fixed threshold is on normalized load: 20/4 = 5 ≤ 6 stays,
        // 10/1 = 10 > 6 moves.
        let t6 = RebalancePolicy::ThresholdFixed { threshold: 6 };
        assert!(!t6.permits_weighted(c, fast, slow, 1));
        assert!(t6.permits_weighted(c, slow, fast, 1));
        // Average threshold: share of bin with speed 1 is ⌈30·1/5⌉ = 6,
        // so the slow bin (weight 10) moves and a weight-6 bin would not.
        assert!(RebalancePolicy::ThresholdAvg.permits_weighted(c, slow, fast, 1));
        assert!(!RebalancePolicy::ThresholdAvg.permits_weighted(
            c,
            BinState {
                weight: 6,
                speed: 1
            },
            fast,
            1
        ));
    }

    #[test]
    fn decide_weighted_matches_decide_on_unit_instances() {
        // Same scripted candidates, same loads: the weighted decision must
        // equal the unit decision, draw for draw.
        let loads = [9u64, 3, 7, 3, 5];
        let m: u64 = loads.iter().sum();
        for policy in all_policies() {
            for script in [[2usize, 1, 3], [1, 4, 2], [0, 0, 0], [4, 3, 3]] {
                let unit = policy.decide(ctx(5, m), 0, loads[0], scripted(&script), |b| loads[b]);
                let weighted = policy.decide_weighted(
                    HeteroRingContext {
                        n: 5,
                        total_weight: m,
                        total_speed: 5,
                    },
                    0,
                    BinState::unit(loads[0]),
                    1,
                    scripted(&script),
                    |b| BinState::unit(loads[b]),
                );
                assert_eq!(unit, weighted, "{policy} {script:?}");
            }
        }
    }

    #[test]
    fn decide_weighted_picks_the_least_normalized_candidate() {
        // Bin 1: 12/4 = 3, bin 2: 4/1 = 4 — the *heavier* bin 1 wins on
        // normalized load, and a weight-2 ball may move there
        // ((12+2)·2 ≤ 30·4).
        let states = [
            BinState {
                weight: 30,
                speed: 2,
            },
            BinState {
                weight: 12,
                speed: 4,
            },
            BinState {
                weight: 4,
                speed: 1,
            },
        ];
        let c = HeteroRingContext {
            n: 3,
            total_weight: 46,
            total_speed: 7,
        };
        let decision = RebalancePolicy::GreedyD { d: 2 }.decide_weighted(
            c,
            0,
            states[0],
            2,
            scripted(&[2, 1]),
            |b| states[b],
        );
        assert_eq!(decision.dest, Some(1));
        assert!(decision.moved);
    }

    #[test]
    fn serde_round_trips_every_variant() {
        for policy in [
            RebalancePolicy::rls(),
            RebalancePolicy::Rls {
                variant: RlsVariant::Strict,
            },
            RebalancePolicy::GreedyD { d: 4 },
            RebalancePolicy::ThresholdFixed { threshold: 7 },
            RebalancePolicy::ThresholdAvg,
            RebalancePolicy::CrsPair,
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: RebalancePolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy, "{json}");
        }
    }
}

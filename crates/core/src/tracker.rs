//! Incremental bookkeeping of the quantities the simulator's stopping
//! conditions and observers need after every single ball movement.
//!
//! Recomputing the discrepancy or the overloaded-ball count from the load
//! vector is `O(n)`; the simulator performs on the order of `m ln n + n²`
//! activations per run and needs these quantities after each one, so the
//! naive approach turns an `O(events)` simulation into `O(events · n)`.
//! [`LoadTracker`] maintains them in `O(1)` amortized per move by exploiting
//! that a single move changes exactly two loads by exactly one:
//!
//! * a histogram of loads (`load value → number of bins`),
//! * the minimum and maximum load (adjusted by at most one step per move),
//! * the number of overloaded balls and of holes,
//! * the counts of bins above / at / below the exact average.
//!
//! The tracker is identity-agnostic: it never needs to know *which* bins
//! moved, only their loads immediately before the move.  The ablation bench
//! `configuration_bookkeeping` quantifies the win over rescanning.

// detlint: allow-file(D004) every float here (average, discrepancy,
// x-balance) is a read-only statistic derived from integer state on
// demand; nothing float-valued is ever written back into the histogram
// or the aggregates, so the trajectory cannot be perturbed.
use std::collections::BTreeMap;

use crate::{BinCounts, Config, Membership};

/// Incrementally maintained summary of a load configuration.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    counts: BTreeMap<u64, usize>,
    n: usize,
    m: u64,
    floor_avg: u64,
    ceil_avg: u64,
    min_load: u64,
    max_load: u64,
    overloaded: u64,
    holes: u64,
    bins_above: usize,
    bins_at: usize,
    bins_below: usize,
}

impl LoadTracker {
    /// Build the tracker for an initial configuration.
    pub fn new(cfg: &Config) -> Self {
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for &l in cfg.loads() {
            *counts.entry(l).or_insert(0) += 1;
        }
        let bc = cfg.bin_counts();
        Self {
            counts,
            n: cfg.n(),
            m: cfg.m(),
            floor_avg: cfg.floor_average(),
            ceil_avg: cfg.ceil_average(),
            min_load: cfg.min_load(),
            max_load: cfg.max_load(),
            overloaded: cfg.overloaded_balls(),
            holes: cfg.holes(),
            bins_above: bc.above,
            bins_at: bc.at,
            bins_below: bc.below,
        }
    }

    /// Number of bins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of balls.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Current minimum load.
    pub fn min_load(&self) -> u64 {
        self.min_load
    }

    /// Current maximum load.
    pub fn max_load(&self) -> u64 {
        self.max_load
    }

    /// The average load `m/n`.
    pub fn average(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// Current discrepancy `max(max − ∅, ∅ − min)`.
    pub fn discrepancy(&self) -> f64 {
        let avg = self.average();
        (self.max_load as f64 - avg)
            .max(avg - self.min_load as f64)
            .max(0.0)
    }

    /// Number of overloaded balls (mass above `⌈∅⌉`).
    pub fn overloaded_balls(&self) -> u64 {
        self.overloaded
    }

    /// Number of holes (mass missing below `⌊∅⌋`).
    pub fn holes(&self) -> u64 {
        self.holes
    }

    /// Bin counts above / at / below the exact average.
    pub fn bin_counts(&self) -> BinCounts {
        BinCounts {
            above: self.bins_above,
            at: self.bins_at,
            below: self.bins_below,
        }
    }

    /// The Phase-2 potential `3A − k − h`.
    pub fn phase2_potential(&self) -> i64 {
        crate::phase2_potential(self.overloaded, self.bins_above, self.bins_below)
    }

    /// Is the tracked configuration perfectly balanced (`disc < 1`)?
    ///
    /// Equivalent to "no overloaded balls and no holes".
    pub fn is_perfectly_balanced(&self) -> bool {
        self.overloaded == 0 && self.holes == 0
    }

    /// Is the tracked configuration `x`-balanced?
    pub fn is_x_balanced(&self, x: f64) -> bool {
        self.discrepancy() <= x
    }

    /// Record a ball moving out of a bin whose load *before the move* was
    /// `old_from_load` and into a bin whose load before the move was
    /// `old_to_load`.  Self-loops must not be recorded.
    ///
    /// # Panics
    /// Panics (in debug builds) if the bookkeeping would go inconsistent,
    /// e.g. `old_from_load == 0` or no bin currently has that load.
    pub fn record_move(&mut self, old_from_load: u64, old_to_load: u64) {
        debug_assert!(old_from_load > 0, "cannot move a ball out of an empty bin");
        self.change_bin(old_from_load, old_from_load - 1);
        self.change_bin(old_to_load, old_to_load + 1);
    }

    /// Record a ball *arriving* into a bin whose load before the arrival was
    /// `old_load` (dynamic instances: `m` grows by one).
    ///
    /// The histogram and the min/max stay incremental; the average-relative
    /// aggregates (overloaded balls, holes, bin counts) are rebuilt from the
    /// histogram because the average `m/n` itself moved.  That rescan is
    /// `O(#distinct loads)` — for configurations near balance a handful of
    /// entries, never `O(n)`.
    pub fn record_insert(&mut self, old_load: u64) {
        self.m += 1;
        self.shift_load(old_load, old_load + 1);
        self.refresh_average_relative();
    }

    /// Record a ball *departing* from a bin whose load before the departure
    /// was `old_load` (dynamic instances: `m` shrinks by one).
    ///
    /// # Panics
    /// Panics (in debug builds) if `old_load == 0`.
    pub fn record_remove(&mut self, old_load: u64) {
        debug_assert!(old_load > 0, "cannot remove a ball from an empty bin");
        self.m -= 1;
        self.shift_load(old_load, old_load - 1);
        self.refresh_average_relative();
    }

    /// Record a bin *joining* the tracked set with `load` balls already in
    /// it (elastic scale-up; warm starts insert the stolen balls'
    /// migrations separately via [`record_move`](Self::record_move), so
    /// joins normally carry `load == 0`).
    ///
    /// `n` grows by one, `m` by `load`, and every average-relative
    /// aggregate is rebuilt from the histogram because `m/n` moved.
    pub fn bin_joined(&mut self, load: u64) {
        self.n += 1;
        self.m += load;
        *self.counts.entry(load).or_insert(0) += 1;
        if load < self.min_load {
            self.min_load = load;
        }
        if load > self.max_load {
            self.max_load = load;
        }
        self.refresh_average_relative();
    }

    /// Record a bin *leaving* the tracked set.  The bin must already be
    /// empty — the engine re-places a draining bin's balls (as moves)
    /// before retiring it, so the tracker only ever drops a zero-load
    /// entry.
    ///
    /// # Panics
    /// Panics if no zero-load bin is currently tracked, or the departing
    /// bin is the last one.
    pub fn bin_retired(&mut self) {
        assert!(self.n > 1, "cannot retire the last tracked bin");
        let c = self
            .counts
            .get_mut(&0)
            .unwrap_or_else(|| panic!("tracker inconsistency: retiring a non-empty bin"));
        *c -= 1;
        let emptied = *c == 0;
        if emptied {
            self.counts.remove(&0);
        }
        self.n -= 1;
        if emptied && self.min_load == 0 {
            // The histogram is non-empty (n ≥ 1 bins remain).
            self.min_load = *self.counts.keys().next().expect("tracker non-empty");
        }
        self.refresh_average_relative();
    }

    /// Rebuild every `m/n`-relative quantity from the histogram after a
    /// population change.
    fn refresh_average_relative(&mut self) {
        let n = self.n as u64;
        self.floor_avg = self.m / n;
        self.ceil_avg = self.m.div_ceil(n);
        self.overloaded = 0;
        self.holes = 0;
        self.bins_above = 0;
        self.bins_at = 0;
        self.bins_below = 0;
        for (&load, &bins) in &self.counts {
            self.overloaded += load.saturating_sub(self.ceil_avg) * bins as u64;
            self.holes += self.floor_avg.saturating_sub(load) * bins as u64;
            let lhs = load as u128 * self.n as u128;
            match lhs.cmp(&(self.m as u128)) {
                core::cmp::Ordering::Greater => self.bins_above += bins,
                core::cmp::Ordering::Equal => self.bins_at += bins,
                core::cmp::Ordering::Less => self.bins_below += bins,
            }
        }
    }

    /// Move one bin from load `old` to load `new` in the histogram and
    /// adjust the min/max (|old − new| must be 1).
    fn shift_load(&mut self, old: u64, new: u64) {
        debug_assert!(old.abs_diff(new) == 1);
        // Histogram.
        let c = self
            .counts
            .get_mut(&old)
            .unwrap_or_else(|| panic!("tracker inconsistency: no bin at load {old}"));
        *c -= 1;
        let emptied = *c == 0;
        if emptied {
            self.counts.remove(&old);
        }
        *self.counts.entry(new).or_insert(0) += 1;

        // Min / max: a single ±1 change moves the extremes by at most one.
        if new > self.max_load {
            self.max_load = new;
        } else if emptied && old == self.max_load {
            // The bin that defined the maximum stepped down to old − 1.
            self.max_load = old - 1;
        }
        if new < self.min_load {
            self.min_load = new;
        } else if emptied && old == self.min_load {
            self.min_load = old + 1;
        }
    }

    /// Move one bin from load `old` to load `new` (|old − new| must be 1),
    /// keeping the average-relative aggregates incremental (`m` unchanged).
    fn change_bin(&mut self, old: u64, new: u64) {
        self.shift_load(old, new);

        // Overloaded balls / holes.
        self.overloaded =
            self.overloaded + new.saturating_sub(self.ceil_avg) - old.saturating_sub(self.ceil_avg);
        self.holes =
            self.holes + self.floor_avg.saturating_sub(new) - self.floor_avg.saturating_sub(old);

        // Bins above / at / below the exact average (compare l·n with m).
        let class = |l: u64| -> i8 {
            let lhs = l as u128 * self.n as u128;
            let rhs = self.m as u128;
            match lhs.cmp(&rhs) {
                core::cmp::Ordering::Greater => 1,
                core::cmp::Ordering::Equal => 0,
                core::cmp::Ordering::Less => -1,
            }
        };
        let (old_class, new_class) = (class(old), class(new));
        if old_class != new_class {
            match old_class {
                1 => self.bins_above -= 1,
                0 => self.bins_at -= 1,
                _ => self.bins_below -= 1,
            }
            match new_class {
                1 => self.bins_above += 1,
                0 => self.bins_at += 1,
                _ => self.bins_below += 1,
            }
        }
    }

    /// The load histogram as ascending `(load, bin count)` pairs.
    ///
    /// Iteration order is deterministic by construction (`BTreeMap`),
    /// so any export or serialization built on it is byte-stable across
    /// runs and across identically-driven trackers — the predecessor
    /// `HashMap` iterated in a per-instance random order, which detlint
    /// rule D001 now bans in trajectory crates.
    pub fn histogram(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts.iter().map(|(&l, &c)| (l, c))
    }

    /// Verify the tracker against the *live* sub-configuration of an
    /// elastic instance (test/debug helper).  The tracker models the live
    /// multiset only: a retired slot holds zero mass forever but is not a
    /// bin — comparing against the capacity-wide [`Config`] would deflate
    /// the average and miscount the at/below classes.
    pub fn matches_live(&self, cfg: &Config, membership: &Membership) -> bool {
        let live: Vec<u64> = membership
            .live_ids()
            .iter()
            .map(|&b| cfg.load(b as usize))
            .collect();
        Config::from_loads(live).is_ok_and(|live_cfg| self.matches(&live_cfg))
    }

    /// Verify the tracker against a configuration (test/debug helper).
    pub fn matches(&self, cfg: &Config) -> bool {
        let bc = cfg.bin_counts();
        self.n == cfg.n()
            && self.m == cfg.m()
            && self.min_load == cfg.min_load()
            && self.max_load == cfg.max_load()
            && self.overloaded == cfg.overloaded_balls()
            && self.holes == cfg.holes()
            && self.bins_above == bc.above
            && self.bins_at == bc.at
            && self.bins_below == bc.below
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Move, RlsRule};

    #[test]
    fn new_matches_configuration() {
        let cfg = Config::from_loads(vec![7, 0, 3, 2]).unwrap();
        let t = LoadTracker::new(&cfg);
        assert!(t.matches(&cfg));
        assert_eq!(t.min_load(), 0);
        assert_eq!(t.max_load(), 7);
        assert_eq!(t.n(), 4);
        assert_eq!(t.m(), 12);
        assert_eq!(t.average(), 3.0);
        assert_eq!(t.discrepancy(), 4.0);
    }

    #[test]
    fn perfectly_balanced_detection() {
        let t = LoadTracker::new(&Config::uniform(5, 2).unwrap());
        assert!(t.is_perfectly_balanced());
        let t2 = LoadTracker::new(&Config::from_loads(vec![3, 1, 2]).unwrap());
        assert!(!t2.is_perfectly_balanced());
        // Fractional average: {2,2,3} on m=7 is perfect.
        let t3 = LoadTracker::new(&Config::from_loads(vec![2, 2, 3]).unwrap());
        assert!(t3.is_perfectly_balanced());
    }

    #[test]
    fn record_move_tracks_a_single_move() {
        let mut cfg = Config::from_loads(vec![5, 1, 3]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        let mv = Move::new(0, 1);
        let (lf, lt) = (cfg.load(0), cfg.load(1));
        cfg.apply(mv).unwrap();
        t.record_move(lf, lt);
        assert!(t.matches(&cfg), "tracker {t:?} vs cfg {cfg:?}");
    }

    #[test]
    fn stays_consistent_over_a_long_rls_trajectory() {
        // Drive a deterministic pseudo-random-ish walk using the RLS rule
        // and check full consistency after every step.
        let mut cfg = Config::all_in_one_bin(8, 64).unwrap();
        let mut t = LoadTracker::new(&cfg);
        let rule = RlsRule::paper();
        let mut state = 12345u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let from = (state >> 33) as usize % cfg.n();
            let to = (state >> 13) as usize % cfg.n();
            if from == to || cfg.load(from) == 0 {
                continue;
            }
            if rule.permits(&cfg, Move::new(from, to)) {
                let (lf, lt) = (cfg.load(from), cfg.load(to));
                cfg.apply(Move::new(from, to)).unwrap();
                t.record_move(lf, lt);
                assert!(t.matches(&cfg));
            }
        }
    }

    #[test]
    fn stays_consistent_under_destructive_moves_too() {
        // The adversary of Lemma 2 performs destructive moves; the tracker
        // must remain exact for those as well (min can decrease, max can
        // increase).
        let mut cfg = Config::from_loads(vec![4, 4, 4, 4]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        // Pile everything into bin 0 by destructive moves.
        for source in 1..4usize {
            for _ in 0..4 {
                let (lf, lt) = (cfg.load(source), cfg.load(0));
                cfg.apply(Move::new(source, 0)).unwrap();
                t.record_move(lf, lt);
                assert!(t.matches(&cfg));
            }
        }
        assert_eq!(t.max_load(), 16);
        assert_eq!(t.min_load(), 0);
        assert_eq!(t.overloaded_balls(), 12);
    }

    #[test]
    fn potential_matches_snapshot() {
        let cfg = Config::from_loads(vec![7, 1, 4, 4, 4, 4]).unwrap();
        let t = LoadTracker::new(&cfg);
        let snap = crate::Phase2Snapshot::capture(&cfg);
        assert_eq!(t.phase2_potential(), snap.potential);
    }

    #[test]
    fn x_balanced_checks() {
        let t = LoadTracker::new(&Config::from_loads(vec![5, 1, 3, 3]).unwrap());
        assert!(t.is_x_balanced(2.0));
        assert!(!t.is_x_balanced(1.5));
    }

    #[test]
    fn insert_and_remove_track_population_changes() {
        let mut cfg = Config::from_loads(vec![5, 1, 3]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        // Arrival into the light bin: the average moves from 3 to 10/3.
        let old = cfg.load(1);
        cfg.add_ball(1).unwrap();
        t.record_insert(old);
        assert!(t.matches(&cfg), "tracker {t:?} vs cfg {cfg:?}");
        assert_eq!(t.m(), 10);
        // Departure from the heavy bin.
        let old = cfg.load(0);
        cfg.remove_ball(0).unwrap();
        t.record_remove(old);
        assert!(t.matches(&cfg));
        assert_eq!(t.m(), 9);
        assert_eq!(t.average(), 3.0);
    }

    #[test]
    fn stays_consistent_over_a_mixed_dynamic_trajectory() {
        // Interleave arrivals, departures and RLS moves and verify full
        // consistency after every step — the invariant the live engine
        // depends on.
        let mut cfg = Config::from_loads(vec![8, 2, 5, 5]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        let rule = RlsRule::paper();
        let mut state = 98765u64;
        for step in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) as usize % cfg.n();
            let b = (state >> 13) as usize % cfg.n();
            match step % 3 {
                0 => {
                    let old = cfg.load(a);
                    cfg.add_ball(a).unwrap();
                    t.record_insert(old);
                }
                1 if cfg.load(b) > 0 => {
                    let old = cfg.load(b);
                    cfg.remove_ball(b).unwrap();
                    t.record_remove(old);
                }
                _ => {
                    if a != b && cfg.load(a) > 0 && rule.permits(&cfg, Move::new(a, b)) {
                        let (lf, lt) = (cfg.load(a), cfg.load(b));
                        cfg.apply(Move::new(a, b)).unwrap();
                        t.record_move(lf, lt);
                    }
                }
            }
            assert!(t.matches(&cfg), "step {step}: {t:?} vs {cfg:?}");
        }
    }

    #[test]
    fn draining_to_zero_balls_is_consistent() {
        let mut cfg = Config::from_loads(vec![1, 2]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        for bin in [0usize, 1, 1] {
            let old = cfg.load(bin);
            cfg.remove_ball(bin).unwrap();
            t.record_remove(old);
            assert!(t.matches(&cfg));
        }
        assert_eq!(t.m(), 0);
        assert!(t.is_perfectly_balanced());
        assert_eq!(t.discrepancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn removing_from_empty_bin_panics_in_debug() {
        let cfg = Config::from_loads(vec![1, 0]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.record_remove(0);
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn moving_from_empty_bin_panics_in_debug() {
        let cfg = Config::from_loads(vec![1, 0]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.record_move(0, 1);
    }

    #[test]
    fn bin_joined_tracks_the_growing_live_set() {
        // Live set {5, 1, 3}; an empty bin joins, then a warm one.
        let mut loads = vec![5u64, 1, 3];
        let cfg = Config::from_loads(loads.clone()).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.bin_joined(0);
        loads.push(0);
        assert!(t.matches(&Config::from_loads(loads.clone()).unwrap()));
        assert_eq!(t.n(), 4);
        assert_eq!(t.m(), 9);
        t.bin_joined(7);
        loads.push(7);
        assert!(t.matches(&Config::from_loads(loads.clone()).unwrap()));
        assert_eq!(t.max_load(), 7);
        assert_eq!(t.min_load(), 0);
    }

    #[test]
    fn bin_retired_drops_one_empty_bin() {
        let cfg = Config::from_loads(vec![4, 0, 2, 0]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.bin_retired();
        assert!(t.matches(&Config::from_loads(vec![4, 0, 2]).unwrap()));
        t.bin_retired();
        // Both zero bins gone: the minimum must recover from the histogram.
        assert!(t.matches(&Config::from_loads(vec![4, 2]).unwrap()));
        assert_eq!(t.min_load(), 2);
        assert_eq!(t.n(), 2);
        assert_eq!(t.m(), 6);
    }

    #[test]
    fn join_then_drain_round_trips() {
        // A drain re-places the victim's balls (moves), then retires it —
        // the exact sequence the live engine performs.
        let cfg = Config::from_loads(vec![3, 3]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.bin_joined(0); // live {3, 3, 0}
        t.record_move(3, 0); // ball 0→2: {2, 3, 1}
        t.record_move(2, 1); // ball 0→2: {1, 3, 2}
                             // Drain bin 0: its last ball moves to bin 2, then the bin leaves.
        t.record_move(1, 2); // {0, 3, 3}
        t.bin_retired(); // live {3, 3}
        assert!(t.matches(&Config::from_loads(vec![3, 3]).unwrap()));
        assert!(t.is_perfectly_balanced());
    }

    #[test]
    #[should_panic(expected = "non-empty bin")]
    fn retiring_without_an_empty_bin_panics() {
        let cfg = Config::from_loads(vec![2, 1]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.bin_retired();
    }

    #[test]
    #[should_panic(expected = "last tracked bin")]
    fn retiring_the_last_bin_panics() {
        let cfg = Config::from_loads(vec![0]).unwrap();
        let mut t = LoadTracker::new(&cfg);
        t.bin_retired();
    }

    /// Serializes the histogram the way an export path would.
    fn render_histogram(t: &LoadTracker) -> String {
        t.histogram()
            .map(|(l, c)| format!("{l}:{c}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    #[test]
    fn histogram_export_is_byte_identical() {
        // Two identically-driven trackers must serialize byte-equal —
        // and so must two trackers that reach the same load multiset
        // through *different* operation orders.  The former caught
        // nothing under HashMap only by luck of equal contents; the
        // latter is where per-instance hash seeds made exports flap.
        let drive = |ops: &[(usize, usize)]| {
            let mut cfg = Config::from_loads(vec![6, 2, 4, 0]).unwrap();
            let mut t = LoadTracker::new(&cfg);
            for &(from, to) in ops {
                let (lf, lt) = (cfg.load(from), cfg.load(to));
                cfg.apply(Move::new(from, to)).unwrap();
                t.record_move(lf, lt);
            }
            t
        };
        let a = drive(&[(0, 3), (0, 1), (2, 3)]);
        let b = drive(&[(0, 3), (0, 1), (2, 3)]);
        assert_eq!(render_histogram(&a), render_histogram(&b));

        // Different order, same final multiset {4, 3, 3, 2}.
        let c = drive(&[(2, 3), (0, 1), (0, 3)]);
        assert_eq!(render_histogram(&a), render_histogram(&c));

        // And the pairs really are ascending in load.
        let loads: Vec<u64> = a.histogram().map(|(l, _)| l).collect();
        let mut sorted = loads.clone();
        sorted.sort_unstable();
        assert_eq!(loads, sorted);
    }
}

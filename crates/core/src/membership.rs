//! Elastic bin membership: which bin ids are live, and the epoch log that
//! makes scale events replayable.
//!
//! The paper fixes `n`; production does not.  [`Membership`] tracks the
//! *live* subset of a monotonically growing id space: bins join at the next
//! fresh id (ids are **never reused**, so recorded trajectories and
//! snapshots stay unambiguous) and retire in place, leaving a permanently
//! empty slot behind.  Every change appends a [`MembershipRecord`]; the
//! 1-based index of a record is its **epoch**, and replaying the log from
//! [`MembershipSnapshot`] reconstructs the exact live set — which is how
//! snapshot restore and topology re-derivation stay deterministic.
//!
//! The live set is kept as a positional array (`active_ids`) with an id →
//! position inverse, so "a uniformly random live bin" is one `next_index`
//! draw — and for a freshly booted system the array is exactly `[0, n)`,
//! which keeps static (churn-free) trajectories bit-identical to the
//! pre-elastic engines.

use serde::{Deserialize, Serialize};

/// One membership change; its 1-based position in the log is its epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipRecord {
    /// The bin that joined or retired.
    pub bin: u32,
    /// `true` for a join, `false` for a retirement.
    pub joined: bool,
}

/// The persistent form of a membership history: the boot-time bin count
/// plus the full epoch log.  Replaying the log is exact, so this is all a
/// snapshot needs to carry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipSnapshot {
    /// Number of bins at boot (ids `0..initial_n`, all live).
    pub initial_n: usize,
    /// Every membership change since boot, in epoch order.
    pub log: Vec<MembershipRecord>,
}

impl MembershipSnapshot {
    /// Reconstruct the membership by replaying the log.
    ///
    /// Fails with a description if the log is inconsistent (a join at the
    /// wrong id, a retirement of a dead bin, or draining the last live
    /// bin).
    pub fn replay(&self) -> Result<Membership, String> {
        self.replay_with(|_, _| {})
    }

    /// [`replay`](Self::replay), invoking `visit` after each applied
    /// record with the membership state *including* that record — the
    /// hook an adjacency layer needs to re-derive its per-epoch patches.
    pub fn replay_with<F>(&self, mut visit: F) -> Result<Membership, String>
    where
        F: FnMut(MembershipRecord, &Membership),
    {
        if self.initial_n == 0 {
            return Err("membership needs at least one boot-time bin".into());
        }
        let mut membership = Membership::new(self.initial_n);
        for (i, rec) in self.log.iter().enumerate() {
            let epoch = i + 1;
            if rec.joined {
                let id = membership.join();
                if id != rec.bin as usize {
                    return Err(format!(
                        "membership log epoch {epoch}: join allocated id {id} but the log says {}",
                        rec.bin
                    ));
                }
            } else {
                let bin = rec.bin as usize;
                if !membership.is_live(bin) {
                    return Err(format!(
                        "membership log epoch {epoch}: retiring bin {bin} which is not live"
                    ));
                }
                if membership.live_count() == 1 {
                    return Err(format!(
                        "membership log epoch {epoch}: cannot retire the last live bin"
                    ));
                }
                membership.retire(bin);
            }
            visit(*rec, &membership);
        }
        Ok(membership)
    }
}

/// The live subset of a monotonically growing bin id space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// `live[id]` — whether the id is currently a member.
    live: Vec<bool>,
    /// The live ids in positional order (swap-removed on retire).  For a
    /// churn-free system this is exactly `[0, n)`, so uniform sampling
    /// over it is bit-identical to uniform sampling over `0..n`.
    live_ids: Vec<u32>,
    /// Position of each id inside `live_ids` (valid only while live).
    pos: Vec<u32>,
    /// Boot-time bin count.
    initial_n: usize,
    /// Every membership change since boot, in epoch order.
    log: Vec<MembershipRecord>,
}

impl Membership {
    /// A freshly booted system: ids `0..n`, all live, epoch 0.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n` exceeds `u32` range (the engines reject
    /// both long before this point).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "membership needs at least one bin");
        let n32: u32 = n.try_into().expect("bin count exceeds u32 range");
        Self {
            live: vec![true; n],
            live_ids: (0..n32).collect(),
            pos: (0..n32).collect(),
            initial_n: n,
            log: Vec::new(),
        }
    }

    /// Total ids ever allocated (live + retired); the next join uses this.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.live.len()
    }

    /// Number of currently live bins.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_ids.len()
    }

    /// Whether `bin` is currently a member.
    #[inline]
    pub fn is_live(&self, bin: usize) -> bool {
        bin < self.live.len() && self.live[bin]
    }

    /// Current epoch: the number of membership changes since boot.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.log.len() as u64
    }

    /// Whether any scale event has happened (epoch > 0).  While `false`,
    /// the live set is exactly `0..n` and every sampling path reduces to
    /// the pre-elastic law.
    #[inline]
    pub fn is_elastic(&self) -> bool {
        !self.log.is_empty()
    }

    /// The live ids in positional (sampling) order.
    #[inline]
    pub fn live_ids(&self) -> &[u32] {
        &self.live_ids
    }

    /// The live id at sampling position `k` (`k < live_count`).
    #[inline]
    pub fn live_at(&self, k: usize) -> usize {
        self.live_ids[k] as usize
    }

    /// The live ids in ascending id order (structured-topology rebuilds
    /// map vertex `i` to the `i`-th smallest live id).
    pub fn sorted_live_ids(&self) -> Vec<u32> {
        let mut ids = self.live_ids.clone();
        ids.sort_unstable();
        ids
    }

    /// The epoch log so far.
    #[inline]
    pub fn log(&self) -> &[MembershipRecord] {
        &self.log
    }

    /// Boot-time bin count.
    #[inline]
    pub fn initial_n(&self) -> usize {
        self.initial_n
    }

    /// Admit a new bin at the next fresh id and return that id.
    pub fn join(&mut self) -> usize {
        let id = self.live.len();
        let id32: u32 = id.try_into().expect("bin count exceeds u32 range");
        self.live.push(true);
        let pos32: u32 = self
            .live_ids
            .len()
            .try_into()
            .expect("bin count exceeds u32 range");
        self.pos.push(pos32);
        self.live_ids.push(id32);
        self.log.push(MembershipRecord {
            bin: id32,
            joined: true,
        });
        id
    }

    /// Retire a live bin.  The id slot survives (never reused); the bin
    /// simply leaves the live set.
    ///
    /// # Panics
    /// Panics if `bin` is not live or is the last live bin.
    pub fn retire(&mut self, bin: usize) {
        assert!(self.is_live(bin), "bin {bin} is not a live member");
        assert!(self.live_count() > 1, "cannot retire the last live bin");
        self.live[bin] = false;
        let p = self.pos[bin] as usize;
        self.live_ids.swap_remove(p);
        if p < self.live_ids.len() {
            // Fix the inverse index of the id that filled the hole.
            let moved = self.live_ids[p] as usize;
            self.pos[moved] = p.try_into().expect("bin count exceeds u32 range");
        }
        self.log.push(MembershipRecord {
            bin: bin.try_into().expect("bin count exceeds u32 range"),
            joined: false,
        });
    }

    /// The persistent form: boot size plus epoch log.
    pub fn snapshot(&self) -> MembershipSnapshot {
        MembershipSnapshot {
            initial_n: self.initial_n,
            log: self.log.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_is_dense_and_ordered() {
        let m = Membership::new(4);
        assert_eq!(m.capacity(), 4);
        assert_eq!(m.live_count(), 4);
        assert_eq!(m.epoch(), 0);
        assert!(!m.is_elastic());
        assert_eq!(m.live_ids(), &[0, 1, 2, 3]);
        assert!((0..4).all(|b| m.is_live(b)));
        assert!(!m.is_live(4));
    }

    #[test]
    fn join_allocates_fresh_ids_and_bumps_the_epoch() {
        let mut m = Membership::new(2);
        assert_eq!(m.join(), 2);
        assert_eq!(m.join(), 3);
        assert_eq!(m.capacity(), 4);
        assert_eq!(m.live_count(), 4);
        assert_eq!(m.epoch(), 2);
        assert!(m.is_elastic());
        assert_eq!(
            m.log(),
            &[
                MembershipRecord {
                    bin: 2,
                    joined: true
                },
                MembershipRecord {
                    bin: 3,
                    joined: true
                },
            ]
        );
    }

    #[test]
    fn retire_swaps_out_of_the_live_set_but_keeps_the_slot() {
        let mut m = Membership::new(4);
        m.retire(1);
        assert!(!m.is_live(1));
        assert_eq!(m.live_count(), 3);
        assert_eq!(m.capacity(), 4, "the id slot is never reused");
        assert_eq!(m.live_ids(), &[0, 3, 2], "swap-remove order");
        assert_eq!(m.sorted_live_ids(), vec![0, 2, 3]);
        // Every live id resolves through the positional inverse.
        for k in 0..m.live_count() {
            let id = m.live_at(k);
            assert!(m.is_live(id));
        }
        // A later join does NOT resurrect id 1.
        assert_eq!(m.join(), 4);
        assert!(!m.is_live(1));
    }

    #[test]
    #[should_panic(expected = "not a live member")]
    fn retiring_a_dead_bin_panics() {
        let mut m = Membership::new(3);
        m.retire(2);
        m.retire(2);
    }

    #[test]
    #[should_panic(expected = "last live bin")]
    fn retiring_the_last_live_bin_panics() {
        let mut m = Membership::new(2);
        m.retire(0);
        m.retire(1);
    }

    #[test]
    fn snapshot_replay_reconstructs_the_exact_live_set() {
        let mut m = Membership::new(3);
        m.join();
        m.retire(0);
        m.join();
        m.retire(3);
        let snap = m.snapshot();
        let back = snap.replay().unwrap();
        assert_eq!(back, m, "replay is exact, including sampling order");
        let json = serde_json::to_string(&snap).unwrap();
        let snap2: MembershipSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap2.replay().unwrap(), m);
    }

    #[test]
    fn replay_rejects_inconsistent_logs() {
        let bad_join = MembershipSnapshot {
            initial_n: 2,
            log: vec![MembershipRecord {
                bin: 7,
                joined: true,
            }],
        };
        assert!(bad_join.replay().unwrap_err().contains("allocated id"));
        let dead_retire = MembershipSnapshot {
            initial_n: 2,
            log: vec![MembershipRecord {
                bin: 5,
                joined: false,
            }],
        };
        assert!(dead_retire.replay().unwrap_err().contains("not live"));
        let drained = MembershipSnapshot {
            initial_n: 1,
            log: vec![MembershipRecord {
                bin: 0,
                joined: false,
            }],
        };
        assert!(drained.replay().unwrap_err().contains("last live bin"));
        let empty = MembershipSnapshot {
            initial_n: 0,
            log: vec![],
        };
        assert!(empty.replay().is_err());
    }
}

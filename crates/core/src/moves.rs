//! Ball movements and their classification (Figure 1 of the paper).
//!
//! A *move* relocates one ball from a source bin to a destination bin.
//! Relative to a configuration `ℓ`, a move from `i` to `j` is
//!
//! * a **protocol (RLS) move** iff `ℓ_i ≥ ℓ_j + 1`,
//! * a **destructive move** iff `ℓ_i ≤ ℓ_j + 1` (exactly the reversals of
//!   protocol moves),
//! * a **neutral move** iff `ℓ_i = ℓ_j + 1` — the overlap of the two classes,
//!   which swaps the roles of the two loads without changing the multiset.
//!
//! The finer [`MoveClass`] distinguishes the strict cases as well, which the
//! coupling argument of Lemma 2 needs.

use serde::{Deserialize, Serialize};

/// A relocation of a single ball from bin `from` to bin `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Move {
    /// Source bin index.
    pub from: usize,
    /// Destination bin index.
    pub to: usize,
}

impl Move {
    /// Construct a move; `from == to` is permitted and denotes a self-loop
    /// (the sampled destination happened to be the current bin).
    pub fn new(from: usize, to: usize) -> Self {
        Self { from, to }
    }

    /// The reverse relocation.
    pub fn reversed(self) -> Self {
        Self {
            from: self.to,
            to: self.from,
        }
    }

    /// Whether the move stays within the same bin.
    pub fn is_self_loop(self) -> bool {
        self.from == self.to
    }
}

impl core::fmt::Display for Move {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

/// Classification of a move relative to a concrete configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MoveClass {
    /// `from == to`: nothing changes regardless of loads.
    SelfLoop,
    /// `ℓ_from > ℓ_to + 1`: a strictly improving protocol move.
    Improving,
    /// `ℓ_from = ℓ_to + 1`: permitted by RLS *and* destructive (the overlap
    /// region in Figure 1).
    Neutral,
    /// `ℓ_from ≤ ℓ_to`: only an adversary would perform this.
    Destructive,
}

impl MoveClass {
    /// Classify by the two loads involved.
    pub fn classify(load_from: u64, load_to: u64, is_self_loop: bool) -> Self {
        if is_self_loop {
            MoveClass::SelfLoop
        } else if load_from > load_to + 1 {
            MoveClass::Improving
        } else if load_from == load_to + 1 {
            MoveClass::Neutral
        } else {
            MoveClass::Destructive
        }
    }

    /// Would RLS (the `≥` variant of this paper) perform the move?
    pub fn is_rls_legal(self) -> bool {
        matches!(self, MoveClass::Improving | MoveClass::Neutral)
    }

    /// Would the strict variant of [12, 11] (`ℓ_i > ℓ_j + 1`) perform it?
    pub fn is_strictly_improving(self) -> bool {
        matches!(self, MoveClass::Improving)
    }

    /// Is the move destructive in the sense of Lemma 2 (`ℓ_i ≤ ℓ_j + 1`),
    /// i.e. the reversal of some legal protocol move?
    pub fn is_destructive(self) -> bool {
        matches!(self, MoveClass::Neutral | MoveClass::Destructive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints() {
        let mv = Move::new(3, 7);
        assert_eq!(mv.reversed(), Move::new(7, 3));
        assert_eq!(mv.reversed().reversed(), mv);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Move::new(4, 4).is_self_loop());
        assert!(!Move::new(4, 5).is_self_loop());
    }

    #[test]
    fn classification_matches_paper_definitions() {
        // ℓ_from > ℓ_to + 1
        assert_eq!(MoveClass::classify(5, 2, false), MoveClass::Improving);
        // ℓ_from = ℓ_to + 1
        assert_eq!(MoveClass::classify(3, 2, false), MoveClass::Neutral);
        // ℓ_from = ℓ_to
        assert_eq!(MoveClass::classify(2, 2, false), MoveClass::Destructive);
        // ℓ_from < ℓ_to
        assert_eq!(MoveClass::classify(1, 4, false), MoveClass::Destructive);
        // self loop dominates
        assert_eq!(MoveClass::classify(9, 0, true), MoveClass::SelfLoop);
    }

    #[test]
    fn neutral_moves_are_both_legal_and_destructive() {
        let c = MoveClass::Neutral;
        assert!(c.is_rls_legal());
        assert!(c.is_destructive());
        assert!(!c.is_strictly_improving());
    }

    #[test]
    fn improving_is_legal_but_not_destructive() {
        let c = MoveClass::Improving;
        assert!(c.is_rls_legal());
        assert!(!c.is_destructive());
        assert!(c.is_strictly_improving());
    }

    #[test]
    fn destructive_is_not_legal() {
        let c = MoveClass::Destructive;
        assert!(!c.is_rls_legal());
        assert!(c.is_destructive());
    }

    #[test]
    fn destructive_moves_are_reversals_of_legal_moves() {
        // Per the paper: a move from a to b is destructive iff, once it has
        // been performed, the reverse move b → a is a valid protocol move on
        // the *resulting* loads (ℓ_a − 1, ℓ_b + 1).  Check exhaustively on a
        // small load range.
        for la in 1u64..7 {
            for lb in 0u64..7 {
                let forward = MoveClass::classify(la, lb, false);
                let reverse_after = MoveClass::classify(lb + 1, la - 1, false);
                assert_eq!(
                    forward.is_destructive(),
                    reverse_after.is_rls_legal(),
                    "la={la}, lb={lb}"
                );
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Move::new(2, 9).to_string(), "2 -> 9");
    }

    #[test]
    fn serde_round_trip() {
        let mv = Move::new(1, 2);
        let json = serde_json::to_string(&mv).unwrap();
        let back: Move = serde_json::from_str(&json).unwrap();
        assert_eq!(mv, back);
    }
}

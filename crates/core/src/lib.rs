//! # rls-core — the paper's model: balls, bins, moves and the RLS rule
//!
//! This crate implements Section 3 of *Tight Load Balancing via Randomized
//! Local Search* (Berenbrink, Kling, Liaw, Mehrabian; IPDPS 2017): load
//! configurations over `n` bins and `m` balls, the discrepancy measure and
//! balance predicates, the classification of ball movements into protocol
//! moves / destructive moves / neutral moves (Figure 1), the RLS decision
//! rule in both its `≥` form (this paper) and its strict `>` form
//! ([Goldberg 2004] and [Ganesh et al. 2012]), and the bookkeeping the
//! analysis relies on: overloaded balls, the Phase-2 potential `3A − k − h`,
//! sorted views and the majorization/closeness relations used by the
//! Destructive Majorization Lemma.
//!
//! Everything here is deterministic and purely combinatorial; randomness
//! (clocks, destination sampling, adversaries) lives in `rls-sim`.
//!
//! ## Quick tour
//!
//! ```
//! use rls_core::{Config, Move, RlsRule, RlsVariant};
//!
//! // Four bins, twelve balls, far from balanced.
//! let mut cfg = Config::from_loads(vec![9, 1, 1, 1]).unwrap();
//! assert_eq!(cfg.average(), 3.0);
//! assert_eq!(cfg.discrepancy(), 6.0);
//!
//! // Ball in bin 0 samples bin 2: RLS permits the move.
//! let rule = RlsRule::new(RlsVariant::Geq);
//! let mv = Move::new(0, 2);
//! assert!(rule.permits(&cfg, mv));
//! cfg.apply(mv).unwrap();
//! assert_eq!(cfg.loads(), &[8, 1, 2, 1]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod error;
mod index;
mod majorization;
mod membership;
mod moves;
mod policy;
mod potential;
mod rls;
mod tracker;

pub use config::{BinCounts, Config};
pub use error::{ConfigError, MoveError};
pub use index::LoadIndex;
pub use majorization::{is_close, majorizes, sorted_desc};
pub use membership::{Membership, MembershipRecord, MembershipSnapshot};
pub use moves::{Move, MoveClass};
pub use policy::{BinState, HeteroRingContext, RebalancePolicy, RingContext, RingDecision};
pub use potential::{phase2_potential, Phase2Snapshot};
pub use rls::{RlsRule, RlsVariant};
pub use tracker::LoadTracker;

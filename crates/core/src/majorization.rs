//! Majorization, sorted views and the "closeness" relation from the proof
//! of the Destructive Majorization Lemma (Lemma 2).
//!
//! The coupling in Lemma 2 works on configurations sorted non-increasingly
//! (RLS is ignorant of bin identity) and maintains the invariant that the
//! adversarial configuration is *close to* the protocol configuration —
//! i.e. obtainable from it by at most one destructive move.  These helpers
//! implement the sorted view, the classical majorization partial order
//! (useful for sanity-checking simplification steps such as "move every
//! ball into one bin"), and the closeness predicate.

use crate::Config;

/// Loads of a configuration sorted non-increasingly.
pub fn sorted_desc(cfg: &Config) -> Vec<u64> {
    cfg.sorted_desc()
}

/// Does configuration `a` majorize configuration `b`?
///
/// With both load vectors sorted non-increasingly, `a ⪰ b` iff every prefix
/// sum of `a` is at least the corresponding prefix sum of `b` (they must
/// have equal totals and equal lengths).  Intuitively `a` is "at least as
/// unbalanced" as `b`; the worst-case simplifications in the paper (all
/// balls in one bin) produce configurations that majorize every other
/// configuration with the same `n` and `m`.
pub fn majorizes(a: &Config, b: &Config) -> bool {
    if a.n() != b.n() || a.m() != b.m() {
        return false;
    }
    let sa = a.sorted_desc();
    let sb = b.sorted_desc();
    let mut prefix_a: u64 = 0;
    let mut prefix_b: u64 = 0;
    for (&xa, &xb) in sa.iter().zip(sb.iter()) {
        prefix_a += xa;
        prefix_b += xb;
        if prefix_a < prefix_b {
            return false;
        }
    }
    true
}

/// Is `b` *close to* `a` in the sense of Lemma 2's proof: `b` equals `a` or
/// is obtained from `a` by exactly one destructive move?
///
/// Bin identity does not matter (the coupling sorts first), so the check is
/// on the sorted load multisets: either they are equal, or they differ in
/// exactly two positions `iL < iR` (after sorting) with
/// `b[iL] = a[iL] + 1`, `b[iR] = a[iR] − 1` and the move from `iR` to `iL`
/// destructive on `a`, i.e. `a[iR] ≤ a[iL] + 1`.
pub fn is_close(a: &Config, b: &Config) -> bool {
    if a.n() != b.n() || a.m() != b.m() {
        return false;
    }
    let sa = a.sorted_desc();
    let sb = b.sorted_desc();
    if sa == sb {
        return true;
    }
    // Compare as multisets of (load, count): b must be a by moving one ball
    // from some load value x to some load value y with x ≤ y + 1, i.e.
    // removing one ball from a bin at load x (creating a bin at x−1) and
    // adding it to a bin at load y (creating a bin at y+1).
    // Equivalent formulation on sorted vectors: there exist indices such
    // that removing one from sa at value x and adding one at value y gives
    // sb.  We detect it by diffing the histograms.
    use std::collections::BTreeMap;
    let mut diff: BTreeMap<i64, i64> = BTreeMap::new();
    for &x in &sa {
        *diff.entry(x as i64).or_insert(0) -= 1;
    }
    for &x in &sb {
        *diff.entry(x as i64).or_insert(0) += 1;
    }
    diff.retain(|_, v| *v != 0);
    // A single ball moved from a bin at load x to a bin at load y changes
    // the histogram by: x: −1, x−1: +1, y: −1, y+1: +1 (with cancellation
    // when values coincide).  Rather than enumerating cancellation patterns
    // we search directly for the (x, y) pair.
    let candidates: Vec<i64> = diff.keys().copied().collect();
    if candidates.is_empty() {
        return true;
    }
    let lo = *candidates.first().unwrap() - 2;
    let hi = *candidates.last().unwrap() + 2;
    for x in lo.max(1)..=hi {
        for y in lo.max(0)..=hi {
            // Destructive move from a bin at load x to a bin at load y:
            // requires x ≤ y + 1 and a bin with load x existing in a.
            if x > y + 1 {
                continue;
            }
            let mut d: BTreeMap<i64, i64> = BTreeMap::new();
            *d.entry(x).or_insert(0) -= 1;
            *d.entry(x - 1).or_insert(0) += 1;
            *d.entry(y).or_insert(0) -= 1;
            *d.entry(y + 1).or_insert(0) += 1;
            d.retain(|_, v| *v != 0);
            if d == diff && sa.contains(&(x as u64)) && sa.contains(&(y as u64)) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(loads: &[u64]) -> Config {
        Config::from_loads(loads.to_vec()).unwrap()
    }

    #[test]
    fn sorted_view() {
        assert_eq!(sorted_desc(&cfg(&[1, 5, 3])), vec![5, 3, 1]);
    }

    #[test]
    fn all_in_one_bin_majorizes_everything() {
        let extreme = cfg(&[9, 0, 0]);
        for other in [&cfg(&[3, 3, 3]), &cfg(&[5, 4, 0]), &cfg(&[7, 1, 1])] {
            assert!(majorizes(&extreme, other));
        }
    }

    #[test]
    fn balanced_is_majorized_by_everything() {
        let balanced = cfg(&[3, 3, 3]);
        for other in [&cfg(&[9, 0, 0]), &cfg(&[5, 4, 0]), &cfg(&[4, 3, 2])] {
            assert!(majorizes(other, &balanced));
            assert!(!majorizes(&balanced, other) || sorted_desc(other) == vec![3, 3, 3]);
        }
    }

    #[test]
    fn majorization_is_reflexive_and_order_insensitive() {
        let a = cfg(&[4, 1, 2]);
        let b = cfg(&[2, 4, 1]);
        assert!(majorizes(&a, &b));
        assert!(majorizes(&b, &a));
    }

    #[test]
    fn majorization_requires_same_n_and_m() {
        assert!(!majorizes(&cfg(&[3, 3]), &cfg(&[3, 3, 0])));
        assert!(!majorizes(&cfg(&[4, 3]), &cfg(&[3, 3])));
    }

    #[test]
    fn incomparable_pair() {
        // (5,5,0,0) vs (6,2,1,1): prefix sums 5,10 vs 6,8 — neither majorizes.
        let a = cfg(&[5, 5, 0, 0]);
        let b = cfg(&[6, 2, 1, 1]);
        assert!(!majorizes(&a, &b));
        assert!(!majorizes(&b, &a));
    }

    #[test]
    fn close_to_itself_and_permutations() {
        let a = cfg(&[4, 2, 1]);
        assert!(is_close(&a, &a));
        assert!(is_close(&a, &cfg(&[1, 4, 2])));
    }

    #[test]
    fn one_destructive_move_is_close() {
        // Destructive move from a bin with load 2 to a bin with load 4
        // (2 ≤ 4 + 1): [4,2,1] -> [5,1,1].
        let a = cfg(&[4, 2, 1]);
        let b = cfg(&[5, 1, 1]);
        assert!(is_close(&a, &b));
    }

    #[test]
    fn neutral_move_is_close() {
        // Neutral move from load 3 to load 2 (3 ≤ 2 + 1): [3,2] -> [2,3],
        // same multiset, trivially close; and [3,2,2] -> [3,3,1] is the
        // reverse-direction neutral move from a 2-bin to another 2-bin.
        let a = cfg(&[3, 2, 2]);
        let b = cfg(&[3, 3, 1]);
        assert!(is_close(&a, &b));
    }

    #[test]
    fn rls_move_in_forward_direction_is_not_close() {
        // [5,1,1] -> [4,2,1] is an *RLS* move (5 ≥ 1+1), not destructive,
        // so the pair is not close in this orientation unless it also
        // happens to be neutral (it is not: 5 > 2).
        let a = cfg(&[5, 1, 1]);
        let b = cfg(&[4, 2, 1]);
        assert!(!is_close(&a, &b));
    }

    #[test]
    fn two_moves_apart_is_not_close() {
        let a = cfg(&[3, 3, 3]);
        let b = cfg(&[5, 2, 2]);
        assert!(!is_close(&a, &b));
    }

    #[test]
    fn mismatched_sizes_are_not_close() {
        assert!(!is_close(&cfg(&[3, 3]), &cfg(&[3, 3, 0])));
        assert!(!is_close(&cfg(&[4, 2]), &cfg(&[4, 3])));
    }
}

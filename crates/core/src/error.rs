//! Error types for configuration construction and move application.

use crate::Move;

/// Errors arising when constructing or resizing a [`Config`](crate::Config).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A configuration needs at least one bin.
    NoBins,
    /// Requested `m` balls cannot be represented (overflow when summing).
    TotalOverflow,
    /// A bin index is out of range (arrival/departure operations).
    BinOutOfRange {
        /// The offending bin index.
        bin: usize,
        /// Number of bins in the configuration.
        n: usize,
    },
    /// The bin holds no ball to remove.
    EmptyBin {
        /// The offending bin index.
        bin: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NoBins => write!(f, "a configuration requires at least one bin"),
            ConfigError::TotalOverflow => write!(f, "total number of balls overflows u64"),
            ConfigError::BinOutOfRange { bin, n } => {
                write!(f, "bin {bin} is outside 0..{n}")
            }
            ConfigError::EmptyBin { bin } => {
                write!(f, "bin {bin} holds no ball to remove")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors arising when applying a [`Move`](crate::Move) to a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// The source or destination bin index is out of range.
    BinOutOfRange {
        /// The offending move.
        mv: Move,
        /// Number of bins in the configuration.
        n: usize,
    },
    /// The source bin holds no ball to move.
    EmptySource {
        /// The offending move.
        mv: Move,
    },
}

impl core::fmt::Display for MoveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MoveError::BinOutOfRange { mv, n } => {
                write!(f, "move {mv} references a bin outside 0..{n}")
            }
            MoveError::EmptySource { mv } => {
                write!(f, "move {mv} has an empty source bin")
            }
        }
    }
}

impl std::error::Error for MoveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let mv = Move::new(3, 1);
        let e1 = MoveError::BinOutOfRange { mv, n: 2 };
        assert!(e1.to_string().contains("outside 0..2"));
        let e2 = MoveError::EmptySource { mv };
        assert!(e2.to_string().contains("empty source"));
        assert!(ConfigError::NoBins.to_string().contains("at least one bin"));
        assert!(ConfigError::TotalOverflow.to_string().contains("overflows"));
    }
}

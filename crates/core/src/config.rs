//! Load configurations: the state of the balls-into-bins system.
//!
//! A configuration is the vector `ℓ = (ℓ_1, …, ℓ_n)` of bin loads with
//! `Σ ℓ_i = m` (Section 3 of the paper).  The struct also exposes the
//! derived quantities the analysis is phrased in: the average load `∅ = m/n`,
//! the discrepancy `disc(ℓ) = max_i |ℓ_i − ∅|`, the balance predicates, the
//! number of overloaded balls `Σ max(0, ℓ_i − ∅)` and the bin counts above /
//! at / below the average used by the Phase-2 potential.

// detlint: allow-file(D004) every float here (average, discrepancy,
// x-balance) is a read-only diagnostic derived on demand from the integer
// load vector; nothing float-valued is ever written back into the
// configuration, so the trajectory cannot be perturbed.

use serde::{Deserialize, Serialize};

use crate::{ConfigError, Move, MoveClass, MoveError};

/// Counts of bins relative to the average load, used by Lemmas 15–17.
///
/// With integer average `∅`, `above` is `h`, `at` is `r` and `below` is `k`
/// in the paper's notation.  With a fractional average no bin can be exactly
/// at the average, so `at` is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinCounts {
    /// Bins with load strictly above the average (`h`).
    pub above: usize,
    /// Bins with load exactly equal to the (integer) average (`r`).
    pub at: usize,
    /// Bins with load strictly below the average (`k`).
    pub below: usize,
}

/// A balls-into-bins load configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Config {
    loads: Vec<u64>,
    total: u64,
}

impl Config {
    /// Build a configuration from explicit bin loads.
    ///
    /// Fails if there are no bins or the total overflows `u64`.
    pub fn from_loads(loads: Vec<u64>) -> Result<Self, ConfigError> {
        if loads.is_empty() {
            return Err(ConfigError::NoBins);
        }
        let mut total: u64 = 0;
        for &l in &loads {
            total = total.checked_add(l).ok_or(ConfigError::TotalOverflow)?;
        }
        Ok(Self { loads, total })
    }

    /// `n` bins each holding exactly `per_bin` balls.
    pub fn uniform(n: usize, per_bin: u64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoBins);
        }
        (per_bin as u128 * n as u128 <= u64::MAX as u128)
            .then(|| Self {
                loads: vec![per_bin; n],
                total: per_bin * n as u64,
            })
            .ok_or(ConfigError::TotalOverflow)
    }

    /// All `m` balls stacked in bin 0 of an `n`-bin system — the worst-case
    /// start used throughout the paper's Phase-1 analysis.
    pub fn all_in_one_bin(n: usize, m: u64) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::NoBins);
        }
        let mut loads = vec![0u64; n];
        loads[0] = m;
        Ok(Self { loads, total: m })
    }

    /// Number of bins `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.loads.len()
    }

    /// Number of balls `m`.
    #[inline]
    pub fn m(&self) -> u64 {
        self.total
    }

    /// Load of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// The full load vector.
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// The average load `∅ = m/n` as a float.
    #[inline]
    pub fn average(&self) -> f64 {
        self.total as f64 / self.loads.len() as f64
    }

    /// `⌊m/n⌋`.
    #[inline]
    pub fn floor_average(&self) -> u64 {
        self.total / self.loads.len() as u64
    }

    /// `⌈m/n⌉`.
    #[inline]
    pub fn ceil_average(&self) -> u64 {
        self.total.div_ceil(self.loads.len() as u64)
    }

    /// Whether `n` divides `m` (the simplifying assumption of Section 6).
    #[inline]
    pub fn divides_evenly(&self) -> bool {
        self.total.is_multiple_of(self.loads.len() as u64)
    }

    /// Maximum bin load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Minimum bin load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// The discrepancy `disc(ℓ) = max_i |ℓ_i − ∅|`.
    pub fn discrepancy(&self) -> f64 {
        let avg = self.average();
        let above = self.max_load() as f64 - avg;
        let below = avg - self.min_load() as f64;
        above.max(below).max(0.0)
    }

    /// Whether the configuration is `x`-balanced, i.e. `disc(ℓ) ≤ x`.
    pub fn is_x_balanced(&self, x: f64) -> bool {
        self.discrepancy() <= x
    }

    /// Whether the configuration is perfectly balanced, i.e. `disc(ℓ) < 1`.
    ///
    /// Equivalently every load lies in `{⌊∅⌋, ⌈∅⌉}`, and when `n | m` every
    /// load equals `m/n` exactly.
    pub fn is_perfectly_balanced(&self) -> bool {
        self.discrepancy() < 1.0
    }

    /// Number of *overloaded balls* `Σ_i max(0, ℓ_i − ⌈∅⌉)` …
    ///
    /// The paper defines this with the exact average `∅` under the
    /// assumption `n | m`; to stay meaningful for arbitrary `m` we count the
    /// balls exceeding `⌈∅⌉` plus, for bins at `⌈∅⌉`…  — no: we follow the
    /// paper exactly when `n | m` and generalize by measuring against the
    /// *ceiling* average otherwise, which is the quantity that must reach
    /// zero for perfect balance.
    pub fn overloaded_balls(&self) -> u64 {
        let target = self.ceil_average();
        self.loads.iter().map(|&l| l.saturating_sub(target)).sum()
    }

    /// Number of *holes* `Σ_i max(0, ⌊∅⌋ − ℓ_i)` (equals
    /// [`overloaded_balls`](Self::overloaded_balls) when `n | m`, as the
    /// paper observes).
    pub fn holes(&self) -> u64 {
        let target = self.floor_average();
        self.loads.iter().map(|&l| target.saturating_sub(l)).sum()
    }

    /// Bin counts above / at / below the average (the `h`, `r`, `k` of
    /// Lemma 16).  Comparison is against the exact average `m/n`.
    pub fn bin_counts(&self) -> BinCounts {
        let n = self.loads.len() as u64;
        let (mut above, mut at, mut below) = (0usize, 0usize, 0usize);
        for &l in &self.loads {
            // Compare l with m/n exactly: l*n vs m (u128 to avoid overflow).
            let lhs = l as u128 * n as u128;
            let rhs = self.total as u128;
            match lhs.cmp(&rhs) {
                core::cmp::Ordering::Greater => above += 1,
                core::cmp::Ordering::Equal => at += 1,
                core::cmp::Ordering::Less => below += 1,
            }
        }
        BinCounts { above, at, below }
    }

    /// Classify a move relative to this configuration (Figure 1).
    pub fn classify(&self, mv: Move) -> Result<MoveClass, MoveError> {
        let n = self.loads.len();
        if mv.from >= n || mv.to >= n {
            return Err(MoveError::BinOutOfRange { mv, n });
        }
        Ok(MoveClass::classify(
            self.loads[mv.from],
            self.loads[mv.to],
            mv.is_self_loop(),
        ))
    }

    /// Apply a move unconditionally (no legality check beyond a non-empty
    /// source).  The RLS rule and the adversary both funnel through here.
    pub fn apply(&mut self, mv: Move) -> Result<(), MoveError> {
        let n = self.loads.len();
        if mv.from >= n || mv.to >= n {
            return Err(MoveError::BinOutOfRange { mv, n });
        }
        if self.loads[mv.from] == 0 {
            return Err(MoveError::EmptySource { mv });
        }
        if mv.from != mv.to {
            self.loads[mv.from] -= 1;
            self.loads[mv.to] += 1;
        }
        Ok(())
    }

    /// Add one ball to bin `bin` (a *dynamic arrival*).
    ///
    /// Unlike [`apply`](Self::apply) this changes `m`, so every
    /// average-relative quantity (discrepancy, overloaded balls, holes, bin
    /// counts) shifts; callers maintaining a [`LoadTracker`](crate::LoadTracker)
    /// must record the arrival through
    /// [`record_insert`](crate::LoadTracker::record_insert).
    pub fn add_ball(&mut self, bin: usize) -> Result<(), ConfigError> {
        let n = self.loads.len();
        if bin >= n {
            return Err(ConfigError::BinOutOfRange { bin, n });
        }
        self.total = self
            .total
            .checked_add(1)
            .ok_or(ConfigError::TotalOverflow)?;
        self.loads[bin] += 1;
        Ok(())
    }

    /// Remove one ball from bin `bin` (a *dynamic departure*).
    ///
    /// Fails if the bin is empty; the companion of
    /// [`add_ball`](Self::add_ball).
    pub fn remove_ball(&mut self, bin: usize) -> Result<(), ConfigError> {
        let n = self.loads.len();
        if bin >= n {
            return Err(ConfigError::BinOutOfRange { bin, n });
        }
        if self.loads[bin] == 0 {
            return Err(ConfigError::EmptyBin { bin });
        }
        self.loads[bin] -= 1;
        self.total -= 1;
        Ok(())
    }

    /// Append a fresh, empty bin at the end of the load vector (an elastic
    /// *bin join*): `n` grows by one, `m` is unchanged, the new bin's id is
    /// returned.
    ///
    /// Elastic engines keep retired bins in the vector at load zero, so
    /// every average-relative quantity on `Config` counts *allocated* bins;
    /// live-set statistics come from the engine's
    /// [`LoadTracker`](crate::LoadTracker), which tracks members only.
    pub fn push_bin(&mut self) -> usize {
        self.loads.push(0);
        self.loads.len() - 1
    }

    /// The loads sorted non-increasingly (the canonical representative used
    /// in the Lemma 2 coupling, which is ignorant of bin identity).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v = self.loads.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Histogram of loads: for each load value, how many bins carry it.
    pub fn histogram(&self) -> std::collections::BTreeMap<u64, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for &l in &self.loads {
            *hist.entry(l).or_insert(0) += 1;
        }
        hist
    }

    /// Total number of ball–bin assignments differing from a perfectly
    /// balanced target; a convenient progress measure for examples/benches
    /// (not used by the paper's analysis).
    pub fn imbalance_l1(&self) -> u64 {
        let floor = self.floor_average();
        let ceil = self.ceil_average();
        self.loads
            .iter()
            .map(|&l| {
                if l > ceil {
                    l - ceil
                } else {
                    floor.saturating_sub(l)
                }
            })
            .sum()
    }
}

impl core::fmt::Display for Config {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Config(n={}, m={}, disc={:.2})",
            self.n(),
            self.m(),
            self.discrepancy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_loads_rejects_empty() {
        assert_eq!(Config::from_loads(vec![]), Err(ConfigError::NoBins));
    }

    #[test]
    fn from_loads_rejects_overflow() {
        assert_eq!(
            Config::from_loads(vec![u64::MAX, 1]),
            Err(ConfigError::TotalOverflow)
        );
    }

    #[test]
    fn uniform_and_all_in_one() {
        let u = Config::uniform(4, 3).unwrap();
        assert_eq!(u.loads(), &[3, 3, 3, 3]);
        assert_eq!(u.m(), 12);
        assert!(u.is_perfectly_balanced());

        let w = Config::all_in_one_bin(4, 12).unwrap();
        assert_eq!(w.loads(), &[12, 0, 0, 0]);
        assert_eq!(w.m(), 12);
        assert_eq!(w.discrepancy(), 9.0);
    }

    #[test]
    fn uniform_zero_bins_rejected() {
        assert!(Config::uniform(0, 5).is_err());
        assert!(Config::all_in_one_bin(0, 5).is_err());
    }

    #[test]
    fn averages_and_divisibility() {
        let c = Config::from_loads(vec![2, 3, 2]).unwrap(); // m=7, n=3
        assert!((c.average() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.floor_average(), 2);
        assert_eq!(c.ceil_average(), 3);
        assert!(!c.divides_evenly());
        let d = Config::uniform(3, 5).unwrap();
        assert!(d.divides_evenly());
    }

    #[test]
    fn discrepancy_matches_definition() {
        let c = Config::from_loads(vec![5, 1, 3, 3]).unwrap(); // avg 3
        assert_eq!(c.discrepancy(), 2.0);
        let below_heavy = Config::from_loads(vec![4, 0, 4, 4]).unwrap(); // avg 3
        assert_eq!(below_heavy.discrepancy(), 3.0);
    }

    #[test]
    fn perfect_balance_integer_average() {
        let c = Config::from_loads(vec![3, 3, 3]).unwrap();
        assert!(c.is_perfectly_balanced());
        let d = Config::from_loads(vec![4, 2, 3]).unwrap();
        assert!(!d.is_perfectly_balanced());
    }

    #[test]
    fn perfect_balance_fractional_average() {
        // m=7, n=3, avg 2.33: loads {2,2,3} are perfectly balanced.
        let c = Config::from_loads(vec![2, 2, 3]).unwrap();
        assert!(c.is_perfectly_balanced());
        // {1,3,3} has disc = 1.33.
        let d = Config::from_loads(vec![1, 3, 3]).unwrap();
        assert!(!d.is_perfectly_balanced());
    }

    #[test]
    fn x_balanced_is_inclusive() {
        let c = Config::from_loads(vec![5, 1, 3, 3]).unwrap();
        assert!(c.is_x_balanced(2.0));
        assert!(!c.is_x_balanced(1.9));
    }

    #[test]
    fn overloaded_balls_and_holes_match_when_divisible() {
        let c = Config::from_loads(vec![6, 2, 4, 4, 4, 4]).unwrap(); // avg 4
        assert_eq!(c.overloaded_balls(), 2);
        assert_eq!(c.holes(), 2);
        // Staircase with integer average: overloaded balls equal the holes.
        let stair = Config::from_loads(vec![6, 5, 4, 4, 4, 4, 3, 2]).unwrap();
        assert_eq!(stair.average(), 4.0);
        assert_eq!(stair.overloaded_balls(), 3);
        assert_eq!(stair.holes(), 3);
    }

    #[test]
    fn bin_counts_integer_average() {
        let c = Config::from_loads(vec![6, 2, 4, 4]).unwrap(); // avg 4
        let counts = c.bin_counts();
        assert_eq!(
            counts,
            BinCounts {
                above: 1,
                at: 2,
                below: 1
            }
        );
    }

    #[test]
    fn bin_counts_fractional_average() {
        let c = Config::from_loads(vec![3, 2, 2]).unwrap(); // avg 7/3
        let counts = c.bin_counts();
        assert_eq!(counts.at, 0);
        assert_eq!(counts.above, 1);
        assert_eq!(counts.below, 2);
    }

    #[test]
    fn apply_moves_and_conservation() {
        let mut c = Config::from_loads(vec![4, 1, 1]).unwrap();
        c.apply(Move::new(0, 1)).unwrap();
        assert_eq!(c.loads(), &[3, 2, 1]);
        assert_eq!(c.m(), 6);
        // Self-loop changes nothing.
        c.apply(Move::new(2, 2)).unwrap();
        assert_eq!(c.loads(), &[3, 2, 1]);
    }

    #[test]
    fn apply_rejects_bad_moves() {
        let mut c = Config::from_loads(vec![1, 0]).unwrap();
        assert!(matches!(
            c.apply(Move::new(1, 0)),
            Err(MoveError::EmptySource { .. })
        ));
        assert!(matches!(
            c.apply(Move::new(0, 5)),
            Err(MoveError::BinOutOfRange { .. })
        ));
        assert!(matches!(
            c.classify(Move::new(9, 0)),
            Err(MoveError::BinOutOfRange { .. })
        ));
    }

    #[test]
    fn classify_delegates_to_move_class() {
        let c = Config::from_loads(vec![5, 3, 4]).unwrap();
        assert_eq!(c.classify(Move::new(0, 1)).unwrap(), MoveClass::Improving);
        assert_eq!(c.classify(Move::new(0, 2)).unwrap(), MoveClass::Neutral);
        assert_eq!(c.classify(Move::new(1, 0)).unwrap(), MoveClass::Destructive);
        assert_eq!(c.classify(Move::new(1, 1)).unwrap(), MoveClass::SelfLoop);
    }

    #[test]
    fn sorted_desc_and_histogram() {
        let c = Config::from_loads(vec![1, 4, 2, 4]).unwrap();
        assert_eq!(c.sorted_desc(), vec![4, 4, 2, 1]);
        let h = c.histogram();
        assert_eq!(h.get(&4), Some(&2));
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.get(&3), None);
    }

    #[test]
    fn imbalance_l1_zero_iff_balanced() {
        let balanced = Config::from_loads(vec![2, 2, 3]).unwrap();
        assert_eq!(balanced.imbalance_l1(), 0);
        let skewed = Config::from_loads(vec![7, 0, 0]).unwrap();
        assert!(skewed.imbalance_l1() > 0);
    }

    #[test]
    fn add_ball_grows_the_population() {
        let mut c = Config::from_loads(vec![2, 0, 1]).unwrap();
        c.add_ball(1).unwrap();
        assert_eq!(c.loads(), &[2, 1, 1]);
        assert_eq!(c.m(), 4);
        assert!((c.average() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            c.add_ball(9),
            Err(ConfigError::BinOutOfRange { bin: 9, n: 3 })
        );
    }

    #[test]
    fn remove_ball_shrinks_the_population() {
        let mut c = Config::from_loads(vec![2, 0, 1]).unwrap();
        c.remove_ball(2).unwrap();
        assert_eq!(c.loads(), &[2, 0, 0]);
        assert_eq!(c.m(), 2);
        assert_eq!(c.remove_ball(2), Err(ConfigError::EmptyBin { bin: 2 }));
        assert_eq!(
            c.remove_ball(7),
            Err(ConfigError::BinOutOfRange { bin: 7, n: 3 })
        );
        // Draining the whole configuration is legal: m = 0 is a valid
        // (trivially balanced) dynamic state.
        c.remove_ball(0).unwrap();
        c.remove_ball(0).unwrap();
        assert_eq!(c.m(), 0);
        assert!(c.is_perfectly_balanced());
    }

    #[test]
    fn add_ball_rejects_overflow() {
        let mut c = Config::from_loads(vec![u64::MAX]).unwrap();
        assert_eq!(c.add_ball(0), Err(ConfigError::TotalOverflow));
        assert_eq!(c.m(), u64::MAX);
    }

    #[test]
    fn add_remove_round_trip_is_identity() {
        let mut c = Config::from_loads(vec![5, 1, 3]).unwrap();
        let before = c.clone();
        c.add_ball(1).unwrap();
        c.remove_ball(1).unwrap();
        assert_eq!(c, before);
    }

    #[test]
    fn display_mentions_sizes() {
        let c = Config::uniform(3, 2).unwrap();
        let s = c.to_string();
        assert!(s.contains("n=3") && s.contains("m=6"));
    }

    #[test]
    fn serde_round_trip() {
        let c = Config::from_loads(vec![3, 1, 2]).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: Config = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

//! Property-based tests for the core model: the invariants Section 3 of the
//! paper lists as "desirable properties" of RLS, plus structural invariants
//! of the bookkeeping types.

use proptest::prelude::*;
use rls_core::{
    is_close, majorizes, Config, LoadIndex, LoadTracker, Move, Phase2Snapshot, RlsRule, RlsVariant,
};

/// Strategy: a small random configuration (1..=12 bins, loads 0..=20).
fn config_strategy() -> impl Strategy<Value = Config> {
    prop::collection::vec(0u64..=20, 1..=12).prop_map(|loads| Config::from_loads(loads).unwrap())
}

/// Strategy: a configuration plus a random (source, destination) pair.
fn config_and_move() -> impl Strategy<Value = (Config, usize, usize)> {
    config_strategy().prop_flat_map(|cfg| {
        let n = cfg.n();
        (Just(cfg), 0..n, 0..n)
    })
}

proptest! {
    /// Total number of balls is conserved by any applied move.
    #[test]
    fn balls_are_conserved((cfg, from, to) in config_and_move()) {
        let mut cfg2 = cfg.clone();
        let m_before = cfg2.m();
        let _ = cfg2.apply(Move::new(from, to));
        prop_assert_eq!(cfg2.m(), m_before);
        prop_assert_eq!(cfg2.loads().iter().sum::<u64>(), m_before);
    }

    /// Under RLS moves the discrepancy never increases, the maximum load
    /// never increases and the minimum load never decreases (Section 3).
    #[test]
    fn rls_moves_never_hurt((cfg, from, to) in config_and_move()) {
        let rule = RlsRule::new(RlsVariant::Geq);
        let mut next = cfg.clone();
        let moved = rule.step(&mut next, from, to);
        if moved {
            prop_assert!(next.discrepancy() <= cfg.discrepancy() + 1e-9);
            prop_assert!(next.max_load() <= cfg.max_load());
            prop_assert!(next.min_load() >= cfg.min_load());
        } else {
            prop_assert_eq!(next, cfg);
        }
    }

    /// The strict variant only ever performs moves the `≥` variant would
    /// also perform.
    #[test]
    fn strict_moves_are_a_subset((cfg, from, to) in config_and_move()) {
        let mv = Move::new(from, to);
        let geq = RlsRule::new(RlsVariant::Geq);
        let strict = RlsRule::new(RlsVariant::Strict);
        if strict.permits(&cfg, mv) {
            prop_assert!(geq.permits(&cfg, mv));
        }
    }

    /// A move and its reverse: exactly one of them is permitted by RLS
    /// unless the move is neutral or a self-loop (then the forward move is
    /// permitted and so is the reverse after it is taken).
    #[test]
    fn move_or_reverse_is_destructive((cfg, from, to) in config_and_move()) {
        prop_assume!(from != to);
        let mv = Move::new(from, to);
        let class = cfg.classify(mv).unwrap();
        let rev_class = cfg.classify(mv.reversed()).unwrap();
        // At least one direction is destructive (they cannot both be
        // strictly improving).
        prop_assert!(class.is_destructive() || rev_class.is_destructive());
    }

    /// Applying a destructive move never decreases the discrepancy below the
    /// original and the all-in-one-bin configuration majorizes the result of
    /// any sequence of moves on the same (n, m).
    #[test]
    fn all_in_one_bin_majorizes_everything(cfg in config_strategy()) {
        let extreme = Config::all_in_one_bin(cfg.n(), cfg.m()).unwrap();
        prop_assert!(majorizes(&extreme, &cfg));
        // Majorization is reflexive.
        prop_assert!(majorizes(&cfg, &cfg));
    }

    /// A perfectly balanced configuration is majorized by every
    /// configuration with the same n and m.
    #[test]
    fn balanced_is_minimal_in_majorization_order(cfg in config_strategy()) {
        let n = cfg.n() as u64;
        let m = cfg.m();
        let base = m / n;
        let extra = (m % n) as usize;
        let mut loads = vec![base; cfg.n()];
        for load in loads.iter_mut().take(extra) {
            *load += 1;
        }
        let balanced = Config::from_loads(loads).unwrap();
        prop_assert!(balanced.is_perfectly_balanced());
        prop_assert!(majorizes(&cfg, &balanced));
    }

    /// The configuration obtained by one destructive move is "close" to the
    /// original in the sense of Lemma 2's proof.
    #[test]
    fn destructive_move_produces_close_configuration((cfg, from, to) in config_and_move()) {
        prop_assume!(from != to);
        prop_assume!(cfg.load(from) > 0);
        let mv = Move::new(from, to);
        let class = cfg.classify(mv).unwrap();
        prop_assume!(class.is_destructive());
        let mut moved = cfg.clone();
        moved.apply(mv).unwrap();
        prop_assert!(is_close(&cfg, &moved), "cfg {:?} moved {:?}", cfg, moved);
    }

    /// The incremental tracker stays consistent with the configuration over
    /// arbitrary sequences of (legal or destructive) moves.
    #[test]
    fn tracker_matches_after_random_walk(
        cfg in config_strategy(),
        steps in prop::collection::vec((0usize..12, 0usize..12), 0..60),
    ) {
        let mut cfg = cfg;
        let mut tracker = LoadTracker::new(&cfg);
        for (from, to) in steps {
            let from = from % cfg.n();
            let to = to % cfg.n();
            if from == to || cfg.load(from) == 0 {
                continue;
            }
            let (lf, lt) = (cfg.load(from), cfg.load(to));
            cfg.apply(Move::new(from, to)).unwrap();
            tracker.record_move(lf, lt);
            prop_assert!(tracker.matches(&cfg));
            prop_assert!((tracker.discrepancy() - cfg.discrepancy()).abs() < 1e-9);
            prop_assert_eq!(tracker.is_perfectly_balanced(), cfg.is_perfectly_balanced());
        }
    }

    /// The average-relative aggregates (discrepancy, overloaded balls,
    /// holes, bin counts, Phase-2 potential) stay pinned to a freshly
    /// rebuilt tracker under *arbitrary interleavings* of moves, arrivals
    /// and departures.  `refresh_average_relative` only runs on population
    /// changes, so this exercises the incremental `record_move` path
    /// between rebuilds as well as the rebuild path itself.
    #[test]
    fn tracker_aggregates_match_rebuild_under_mixed_churn(
        cfg in config_strategy(),
        ops in prop::collection::vec((0u8..3, 0usize..12, 0usize..12), 0..80),
    ) {
        let mut cfg = cfg;
        let mut tracker = LoadTracker::new(&cfg);
        for (kind, a, b) in ops {
            let a = a % cfg.n();
            let b = b % cfg.n();
            match kind {
                0 => {
                    // Arrival into bin `a`.
                    let old = cfg.load(a);
                    if cfg.add_ball(a).is_err() {
                        continue;
                    }
                    tracker.record_insert(old);
                }
                1 => {
                    // Departure from bin `a` (skipped when empty).
                    if cfg.load(a) == 0 {
                        continue;
                    }
                    let old = cfg.load(a);
                    cfg.remove_ball(a).unwrap();
                    tracker.record_remove(old);
                }
                _ => {
                    // Move a → b (legal or destructive; skipped when
                    // impossible).
                    if a == b || cfg.load(a) == 0 {
                        continue;
                    }
                    let (lf, lt) = (cfg.load(a), cfg.load(b));
                    cfg.apply(Move::new(a, b)).unwrap();
                    tracker.record_move(lf, lt);
                }
            }
            let rebuilt = LoadTracker::new(&cfg);
            prop_assert!(tracker.matches(&cfg));
            prop_assert!((tracker.discrepancy() - rebuilt.discrepancy()).abs() < 1e-12);
            prop_assert_eq!(tracker.overloaded_balls(), rebuilt.overloaded_balls());
            prop_assert_eq!(tracker.holes(), rebuilt.holes());
            prop_assert_eq!(tracker.bin_counts(), rebuilt.bin_counts());
            prop_assert_eq!(tracker.phase2_potential(), rebuilt.phase2_potential());
            prop_assert_eq!(tracker.min_load(), rebuilt.min_load());
            prop_assert_eq!(tracker.max_load(), rebuilt.max_load());
        }
    }

    /// The Fenwick load index tracks the same interleavings: every rank
    /// maps to the bin a cumulative scan would give, and point updates
    /// agree with the configuration.
    #[test]
    fn load_index_matches_config_under_mixed_churn(
        cfg in config_strategy(),
        ops in prop::collection::vec((0u8..3, 0usize..12, 0usize..12), 0..60),
    ) {
        let mut cfg = cfg;
        let mut index = LoadIndex::new(&cfg);
        for (kind, a, b) in ops {
            let a = a % cfg.n();
            let b = b % cfg.n();
            match kind {
                0 => {
                    if cfg.add_ball(a).is_err() {
                        continue;
                    }
                    index.record_insert(a);
                }
                1 => {
                    if cfg.load(a) == 0 {
                        continue;
                    }
                    cfg.remove_ball(a).unwrap();
                    index.record_remove(a);
                }
                _ => {
                    if a == b || cfg.load(a) == 0 {
                        continue;
                    }
                    cfg.apply(Move::new(a, b)).unwrap();
                    index.record_move(a, b);
                }
            }
            prop_assert!(index.matches(&cfg));
        }
        // Rank queries agree with the linear scan on the final state.
        let mut acc = 0u64;
        let mut expect = Vec::new();
        for (i, &l) in cfg.loads().iter().enumerate() {
            for _ in 0..l {
                expect.push(i);
            }
            acc += l;
        }
        prop_assert_eq!(index.total(), acc);
        for (rank, &bin) in expect.iter().enumerate() {
            prop_assert_eq!(index.bin_at(rank as u64), bin);
        }
    }

    /// Overloaded balls equal holes whenever n divides m, and both are zero
    /// exactly on perfectly balanced configurations.
    #[test]
    fn overloaded_balls_equal_holes_when_divisible(cfg in config_strategy()) {
        if cfg.divides_evenly() {
            prop_assert_eq!(cfg.overloaded_balls(), cfg.holes());
        }
        prop_assert_eq!(
            cfg.is_perfectly_balanced(),
            cfg.overloaded_balls() == 0 && cfg.holes() == 0
        );
    }

    /// The Phase-2 potential is non-negative and zero only at small
    /// discrepancy (≤ 1) when the average is an integer.
    #[test]
    fn phase2_potential_nonnegative(cfg in config_strategy()) {
        prop_assume!(cfg.divides_evenly());
        let snap = Phase2Snapshot::capture(&cfg);
        prop_assert!(snap.potential >= 0);
        if snap.potential == 0 {
            prop_assert!(cfg.discrepancy() <= 1.0);
        }
    }

    /// Sorted views are permutations of the original loads.
    #[test]
    fn sorted_desc_is_a_permutation(cfg in config_strategy()) {
        let mut sorted = cfg.sorted_desc();
        prop_assert!(sorted.windows(2).all(|w| w[0] >= w[1]));
        sorted.sort_unstable();
        let mut original = cfg.loads().to_vec();
        original.sort_unstable();
        prop_assert_eq!(sorted, original);
    }

    /// The branch-free, prefetched Fenwick descent agrees with a reference
    /// cumulative scan for *every* rank, on arbitrary load vectors (zero
    /// bins, non-power-of-two lengths) and across elastic add/retire
    /// churn — and the power-of-two capacity invariant that lets the
    /// descent drop its per-level bounds check actually holds throughout.
    #[test]
    fn branch_free_descent_matches_reference_scan(
        loads in prop::collection::vec(0u64..=12, 1..=40),
        churn in prop::collection::vec((0u8..2, 0u64..=9, 0usize..40), 0..12),
    ) {
        let mut loads = loads;
        let mut index = LoadIndex::from_loads(&loads);
        prop_assert!(index.capacity().is_power_of_two());
        prop_assert!(index.capacity() >= loads.len());

        // Interleave elastic scale events so the invariant is exercised
        // across capacity-doubling rebuilds, not just at construction.
        for (kind, mass, pick) in churn {
            if kind == 0 {
                let bin = index.add_bin(mass);
                prop_assert_eq!(bin, loads.len());
                loads.push(mass);
            } else {
                let bin = pick % loads.len();
                let drained = index.retire_bin(bin);
                prop_assert_eq!(drained, loads[bin]);
                loads[bin] = 0;
            }
            prop_assert!(index.capacity().is_power_of_two());
            prop_assert!(index.capacity() >= loads.len());
        }

        // Reference path: a cumulative linear scan over the load vector.
        // The descent must agree bin-for-bin on every rank, and its depth
        // must equal the (constant) number of Fenwick levels.
        let total: u64 = loads.iter().sum();
        prop_assert_eq!(index.total(), total);
        let levels = index.capacity().trailing_zeros() + 1;
        let mut rank = 0u64;
        for (bin, &load) in loads.iter().enumerate() {
            for _ in 0..load {
                let (got, depth) = index.bin_at_depth(rank);
                prop_assert_eq!(got, bin);
                prop_assert_eq!(depth, levels);
                rank += 1;
            }
        }
    }

    /// The histogram counts every bin exactly once.
    #[test]
    fn histogram_counts_all_bins(cfg in config_strategy()) {
        let total: usize = cfg.histogram().values().sum();
        prop_assert_eq!(total, cfg.n());
    }

    /// Discrepancy is zero iff all loads are equal, and `is_x_balanced` is
    /// monotone in `x`.
    #[test]
    fn discrepancy_basics(cfg in config_strategy(), x in 0.0f64..30.0) {
        let all_equal = cfg.loads().windows(2).all(|w| w[0] == w[1]);
        if all_equal {
            prop_assert!(cfg.discrepancy() < 1e-9);
        }
        if cfg.is_x_balanced(x) {
            prop_assert!(cfg.is_x_balanced(x + 1.0));
        }
    }
}

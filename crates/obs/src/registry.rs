//! The metric catalog: named families of counters, gauges and
//! histograms, rendered as Prometheus text exposition or a JSON
//! snapshot.
//!
//! Registration is idempotent — asking for the same `(name, labels)`
//! series twice hands back the same shared instrument — so independent
//! layers (engine, serve, campaign) can all say
//! `registry.counter("rls_engine_events_total", …)` without coordinating.
//! The registry lock is only held during registration and rendering,
//! never on the record path: instruments are `Arc`s the caller keeps.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, ShardedCounter};

/// What a metric family is, for the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`Counter` or `ShardedCounter`).
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Sharded(Arc<ShardedCounter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label block (`""` or `{k="v",…}`), which
    /// sorts deterministically in the exposition.
    series: BTreeMap<String, Instrument>,
}

/// A registry of named metric families.
///
/// Cloning is cheap (shared interior); all handles observe the same
/// catalog.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Renders a label set as `{k="v",…}` (or `""` when empty), escaping
/// backslashes, quotes and newlines per the Prometheus text format.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Inserts `extra` as an additional label into an existing rendered
/// label block (used to splice `le` into histogram series).
fn with_extra_label(block: &str, key: &str, value: &str) -> String {
    if block.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // block ends with '}' — splice before it.
        format!("{},{key}=\"{value}\"}}", &block[..block.len() - 1])
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: F,
        extract: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Instrument,
        G: Fn(&Instrument) -> Option<Arc<T>>,
    {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let family = inner.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} re-registered with a different kind"
        );
        let key = label_block(labels);
        let inst = family.series.entry(key).or_insert_with(make);
        extract(inst).unwrap_or_else(|| {
            panic!("metric {name} re-registered with a different instrument type")
        })
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabeled cache-line-striped counter
    /// (rendered identically to a plain counter).
    pub fn sharded_counter(&self, name: &str, help: &str) -> Arc<ShardedCounter> {
        self.sharded_counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled sharded-counter series.
    pub fn sharded_counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<ShardedCounter> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Instrument::Sharded(Arc::new(ShardedCounter::new())),
            |i| match i {
                Instrument::Sharded(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// All registered family names, sorted (the metrics-drift check
    /// compares this against the documented catalog).
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Renders the whole catalog in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` headers, one line per
    /// series, histograms as cumulative `_bucket{le=…}` plus `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in inner.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, inst) in family.series.iter() {
                match inst {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Instrument::Sharded(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        for (ub, cum) in snap.cumulative_buckets() {
                            let series = with_extra_label(labels, "le", &ub.to_string());
                            let _ = writeln!(out, "{name}_bucket{series} {cum}");
                        }
                        let inf = with_extra_label(labels, "le", "+Inf");
                        let _ = writeln!(out, "{name}_bucket{inf} {}", snap.count());
                        let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum());
                        let _ = writeln!(out, "{name}_count{labels} {}", snap.count());
                    }
                }
            }
        }
        out
    }

    /// Renders the catalog as a single JSON object: counters and gauges
    /// as numbers, histograms as `{count, sum, max, mean, p50, p90, p99}`
    /// objects, keyed by `name` or `name{labels}`.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::from("{");
        let mut first = true;
        for (name, family) in inner.iter() {
            for (labels, inst) in family.series.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let key = format!("{name}{labels}").replace('"', "'");
                let _ = write!(out, "\"{key}\":");
                match inst {
                    Instrument::Counter(c) => {
                        let _ = write!(out, "{}", c.get());
                    }
                    Instrument::Sharded(c) => {
                        let _ = write!(out, "{}", c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = write!(out, "{}", g.get());
                    }
                    Instrument::Histogram(h) => {
                        let s = h.snapshot();
                        let _ = write!(
                            out,
                            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                            s.count(),
                            s.sum(),
                            s.max(),
                            s.mean(),
                            s.value_at_quantile(0.50),
                            s.value_at_quantile(0.90),
                            s.value_at_quantile(0.99),
                        );
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("rls_test_total", "a test counter");
        let b = r.counter("rls_test_total", "a test counter");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7, "same series must share one cell");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let x = r.counter_with("rls_probe_total", "probes", &[("policy", "rls")]);
        let y = r.counter_with("rls_probe_total", "probes", &[("policy", "greedy-2")]);
        x.inc();
        y.add(2);
        assert_eq!(x.get(), 1);
        assert_eq!(y.get(), 2);
        assert_eq!(r.names(), vec!["rls_probe_total".to_string()]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("rls_conflict", "first");
        r.gauge("rls_conflict", "second");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("rls_events_total", "events applied").add(5);
        r.gauge_with("rls_load", "bin load", &[("bin", "0")]).set(9);
        let h = r.histogram("rls_latency_ns", "latency");
        h.record(1);
        h.record(100);
        h.record(100);
        let text = r.render_prometheus();

        assert!(text.contains("# HELP rls_events_total events applied"));
        assert!(text.contains("# TYPE rls_events_total counter"));
        assert!(text.contains("rls_events_total 5"));
        assert!(text.contains("# TYPE rls_load gauge"));
        assert!(text.contains("rls_load{bin=\"0\"} 9"));
        assert!(text.contains("# TYPE rls_latency_ns histogram"));
        assert!(text.contains("rls_latency_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("rls_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("rls_latency_ns_sum 201"));
        assert!(text.contains("rls_latency_ns_count 3"));

        // Every non-comment line is `name{labels}? value` with a finite
        // numeric value — the shape the drift check depends on.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            let parsed: f64 = value.parse().expect("numeric value");
            assert!(parsed.is_finite(), "non-finite value in line: {line}");
        }
    }

    #[test]
    fn histogram_le_labels_merge_with_series_labels() {
        let r = Registry::new();
        let h = r.histogram_with("rls_stage_ns", "stage time", &[("stage", "parse")]);
        h.record(7);
        let text = r.render_prometheus();
        assert!(text.contains("rls_stage_ns_bucket{stage=\"parse\",le=\"7\"} 1"));
        assert!(text.contains("rls_stage_ns_sum{stage=\"parse\"} 7"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("rls_esc_total", "escape test", &[("path", "a\"b\\c")])
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("rls_esc_total{path=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn json_snapshot_is_wellformed() {
        let r = Registry::new();
        r.counter("rls_a_total", "a").add(2);
        let h = r.histogram("rls_b_ns", "b");
        h.record(10);
        let json = r.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rls_a_total\":2"));
        assert!(json.contains("\"rls_b_ns\":{\"count\":1,\"sum\":10,\"max\":10"));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",}"));
    }
}

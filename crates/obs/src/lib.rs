//! # rls-obs — zero-perturbation telemetry for the RLS stack
//!
//! Every runtime crate in this workspace (live engine, sharded engine,
//! HTTP serving layer, campaign driver) threads its counters and timers
//! through this crate.  The design constraint is hard: **enabling
//! telemetry never changes a trajectory**.  Nothing here draws from an
//! engine RNG, branches on an observed value, or feeds anything back into
//! the system under measurement — instruments are write-only taps on
//! atomic cells, and the bit-identity tests in `crates/live/tests/`
//! enforce that an instrumented run and a bare run produce identical
//! load vectors, counters, clocks and RNG states.
//!
//! ## Pieces
//!
//! * [`Counter`] / [`Gauge`] — relaxed `AtomicU64` cells.
//! * [`ShardedCounter`] — a cache-line-striped counter for hot paths
//!   incremented from many threads (sharded engine workers).
//! * [`Histogram`] — a fixed-bucket log-linear histogram over `u64`
//!   values (nanoseconds, depths, byte counts).  Lock-free recording,
//!   mergeable snapshots, bounded relative quantile error
//!   ([`Histogram::MAX_RELATIVE_ERROR`]).
//! * [`Registry`] — the named catalog: registers metrics once, hands out
//!   shared handles, and renders the whole catalog as Prometheus text
//!   exposition ([`Registry::render_prometheus`]) or a JSON snapshot
//!   ([`Registry::snapshot_json`]).
//! * [`FlightRecorder`] — a fixed-size lock-free ring of recent annotated
//!   events (the serving layer's black box: command kind, coordinates,
//!   stage latencies), dumpable at any time without stopping writers.
//!
//! The crate is `std`-only and dependency-free so every layer — including
//! `rls-core`-adjacent hot paths — can afford the tap.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod flight;
mod metrics;
mod registry;

pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, ShardedCounter};
pub use registry::{MetricKind, Registry};

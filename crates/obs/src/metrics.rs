//! Atomic instruments: counters, gauges, sharded counters, and the
//! log-linear histogram.
//!
//! Everything here is a write-only tap: recording is a handful of relaxed
//! atomic operations, never a lock, never an allocation, and never a
//! branch whose outcome leaks back into the caller.  That is what lets
//! the runtime crates leave instruments attached on hot paths while the
//! bit-identity tests demand unchanged trajectories.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All operations use relaxed ordering: metrics are statistical, not a
/// synchronization primitive.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping; counters are u64 and overflow is a
    /// theoretical concern only).
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: relaxed — statistical counter; exactness needs only
        // fetch_add atomicity, nothing is published through it.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ORDERING: relaxed — a telemetry read; may lag concurrent adds.
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, live bins).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        // ORDERING: relaxed — gauges guard no other data; last write wins.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: relaxed — see `set`; atomicity alone keeps the sum.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a racy saturation: concurrent
    /// mixed add/sub may transiently read stale values, which is
    /// acceptable for telemetry).
    #[inline]
    pub fn sub(&self, n: u64) {
        // ORDERING: relaxed — the CAS loop needs only atomicity; the
        // saturation itself is documented as racy telemetry above.
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            // ORDERING: relaxed — atomicity only, as above.
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // ORDERING: relaxed — a telemetry read; may lag concurrent writes.
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of stripes in a [`ShardedCounter`]. Power of two so the stripe
/// pick is a mask.
const STRIPES: usize = 16;

/// Padding wrapper that spaces stripes across cache lines to avoid
/// false sharing between writer threads.
#[derive(Debug)]
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// A cache-line-striped counter for paths incremented from many threads
/// at once (sharded-engine workers, serve connection handlers).
///
/// Writers pick a stripe from a caller-supplied hint (worker index);
/// readers sum all stripes.  Totals are exact, per-stripe distribution is
/// not meaningful.
#[derive(Debug)]
pub struct ShardedCounter {
    stripes: [PaddedCell; STRIPES],
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    /// Creates a sharded counter at zero.
    pub fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| PaddedCell(AtomicU64::new(0))),
        }
    }

    /// Adds `n` on the stripe picked by `hint` (e.g. a worker or shard
    /// index; any value works, collisions only cost contention).
    #[inline]
    pub fn add(&self, hint: usize, n: u64) {
        // Cross-stripe order is meaningless by design; per-stripe totals
        // are exact by fetch_add atomicity alone.
        // ORDERING: relaxed — atomicity only (see above).
        self.stripes[hint & (STRIPES - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one on the stripe picked by `hint`.
    #[inline]
    pub fn inc(&self, hint: usize) {
        self.add(hint, 1);
    }

    /// Sum over all stripes.
    pub fn get(&self) -> u64 {
        // The sum is a moment-in-time estimate while writers run and
        // exact once they quiesce; ShardedCounterModel pins both.
        // ORDERING: relaxed — atomicity only (see above).
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Sub-bucket resolution bits for the log-linear layout: each power-of-two
/// range is split into `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power-of-two range.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values below `2^(SUB_BITS + 1)` get exact (width-1) buckets; above
/// that, buckets widen geometrically.
const FIRST_LOG_RANGE: u32 = SUB_BITS + 1;
/// Total bucket count covering the full `u64` range:
/// `2 * SUB_BUCKETS` exact buckets for values `< 2^(SUB_BITS+1)`, then
/// `SUB_BUCKETS` per remaining power-of-two range.
const NUM_BUCKETS: usize = (2 * SUB_BUCKETS + (64 - FIRST_LOG_RANGE as u64) * SUB_BUCKETS) as usize;

/// A lock-free log-linear histogram over `u64` values.
///
/// Layout (HdrHistogram-style): values below `2^(SUB_BITS+1) = 32` land
/// in exact width-1 buckets; each higher power-of-two range `[2^k, 2^(k+1))`
/// is split into 16 linear sub-buckets, so any reported quantile is within
/// [`Histogram::MAX_RELATIVE_ERROR`] of the true value.  Recording is two
/// relaxed `fetch_add`s plus a `fetch_max`; snapshots are consistent
/// enough for telemetry (buckets are read without a barrier, so a
/// snapshot taken mid-record can be off by in-flight samples).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Worst-case relative error of any reported quantile: half a
    /// sub-bucket width, `1 / 2^SUB_BITS = 6.25%`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, || AtomicU64::new(0));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `value`.
    #[inline]
    fn bucket_index(value: u64) -> usize {
        // bit_len = position of the highest set bit + 1 (0 for value 0).
        let bit_len = 64 - value.leading_zeros();
        if bit_len <= FIRST_LOG_RANGE {
            // Exact region: one bucket per integer value.
            value as usize
        } else {
            // Range [2^(bit_len-1), 2^bit_len), split into SUB_BUCKETS
            // linear sub-buckets of width 2^(bit_len-1-SUB_BITS).
            let log = bit_len - 1; // floor(log2(value)) >= FIRST_LOG_RANGE
            let sub = (value >> (log - SUB_BITS)) & (SUB_BUCKETS - 1);
            let base = 2 * SUB_BUCKETS + (log - FIRST_LOG_RANGE) as u64 * SUB_BUCKETS;
            (base + sub) as usize
        }
    }

    /// Inclusive upper bound of bucket `index` (the largest value that
    /// maps to it).
    fn bucket_upper_bound(index: usize) -> u64 {
        let i = index as u64;
        if i < 2 * SUB_BUCKETS {
            i
        } else {
            let rel = i - 2 * SUB_BUCKETS;
            let log = FIRST_LOG_RANGE + (rel / SUB_BUCKETS) as u32;
            let sub = rel % SUB_BUCKETS;
            let width = 1u64 << (log - SUB_BITS);
            // Start of the range plus (sub+1) sub-bucket widths, minus 1
            // — subtracted first so the top bucket (which ends exactly at
            // u64::MAX) doesn't overflow.
            ((1u64 << log) - 1) + (sub + 1) * width
        }
    }

    /// Records one observation. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        // The four fields are deliberately not a consistent tuple while
        // writers run; snapshot() re-derives count from buckets, and
        // HistogramModel checks exactness at quiesce.
        // ORDERING: relaxed — atomicity is all the tuple story needs.
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // ORDERING: relaxed — fetch_max atomicity keeps the running max.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // ORDERING: relaxed — telemetry read; may trail in-flight records.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wraps on overflow past `u64::MAX`).
    pub fn sum(&self) -> u64 {
        // ORDERING: relaxed — telemetry read; may trail in-flight records.
        self.sum.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time snapshot suitable for merging and quantile
    /// queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ORDERING: relaxed — each bucket is read atomically; the scan
        // as a whole is a racing estimate made coherent below.
        let read = |b: &AtomicU64| b.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(read).collect();
        // Derive count/sum from buckets where possible so the snapshot is
        // internally consistent even if records race the scan: count is
        // the bucket total; sum/max are the (possibly slightly ahead)
        // atomics, clamped to plausible values by the merge consumers.
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            // ORDERING: relaxed — see the scan above; consumers treat sum
            // and max as possibly slightly ahead of the bucket total.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self` (bucket-wise addition; max of maxes).
    /// Associative and commutative, with [`empty`](Self::empty) as
    /// identity — the property the bench-report merge relies on.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th observation. Returns 0 for an
    /// empty snapshot. Monotone in `q` and within
    /// [`Histogram::MAX_RELATIVE_ERROR`] of the exact order statistic.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The true max is exact; never report past it.
                return Histogram::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterates `(upper_bound_inclusive, cumulative_count)` over
    /// non-empty buckets — the shape Prometheus `le` buckets need.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().enumerate().filter_map(move |(i, &c)| {
            if c == 0 {
                None
            } else {
                cum += c;
                Some((Histogram::bucket_upper_bound(i), cum))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn sharded_counter_sums_across_stripes() {
        let c = ShardedCounter::new();
        for hint in 0..100 {
            c.add(hint, 2);
        }
        assert_eq!(c.get(), 200);
    }

    #[test]
    fn sharded_counter_concurrent_total_is_exact() {
        let c = std::sync::Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        // Every probed value must map to a bucket whose upper bound is
        // >= the value, and the *previous* bucket's bound must be < it.
        let probes: Vec<u64> = (0..200)
            .chain((1..60).map(|k| (1u64 << k.min(63)) - 1))
            .chain((1..60).map(|k| 1u64 << k.min(63)))
            .chain((1..60).map(|k| (1u64 << k.min(63)) + 1))
            .chain([u64::MAX, u64::MAX - 1, 123_456_789, 999_999_999_999])
            .collect();
        for v in probes {
            let i = Histogram::bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for value {v}");
            let ub = Histogram::bucket_upper_bound(i);
            assert!(ub >= v, "upper bound {ub} < value {v} (bucket {i})");
            if i > 0 {
                let prev_ub = Histogram::bucket_upper_bound(i - 1);
                assert!(
                    prev_ub < v,
                    "prev bound {prev_ub} >= value {v} (bucket {i})"
                );
            }
        }
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let ub = Histogram::bucket_upper_bound(i);
            if let Some(p) = prev {
                assert!(ub > p, "bounds not increasing at bucket {i}: {p} !< {ub}");
            }
            prev = Some(ub);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..32u64 {
            // Quantile that lands exactly on the (v+1)-th observation.
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(s.value_at_quantile(q), v, "small value {v} not exact");
        }
    }

    /// Brute-force reference: sort the raw values and index the order
    /// statistic directly.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn quantiles_match_brute_force_within_error_bound() {
        // Deterministic pseudo-random values spanning several decades.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut values = Vec::new();
        let h = Histogram::new();
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 10_000_000; // up to 10ms in nanos
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count(), 5000);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&values, q);
            let approx = s.value_at_quantile(q);
            assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let err = (approx - exact) as f64 / (exact.max(1)) as f64;
            assert!(
                err <= Histogram::MAX_RELATIVE_ERROR + 1e-9,
                "q={q}: err {err} exceeds bound (approx {approx}, exact {exact})"
            );
        }
        assert_eq!(s.max(), *values.last().unwrap());
        assert_eq!(s.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        let mut x = 0x243f6a8885a308d3u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 40);
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            let v = s.value_at_quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(s.value_at_quantile(1.0), s.max());
    }

    #[test]
    fn merge_is_associative_and_commutative_with_identity() {
        let mk = |seed: u64, n: u64| {
            let h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                h.record(x >> 32);
            }
            h.snapshot()
        };
        let a = mk(1, 300);
        let b = mk(2, 500);
        let c = mk(3, 700);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge not associative");

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge not commutative");

        // identity
        let mut ae = a.clone();
        ae.merge(&HistogramSnapshot::empty());
        assert_eq!(ae, a, "empty not an identity");

        assert_eq!(ab_c.count(), 1500);
    }

    #[test]
    fn merged_quantiles_equal_combined_recording() {
        // Recording the union into one histogram must equal merging the
        // two snapshots — the property `serve bench` relies on when
        // combining per-connection histograms.
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        let hu = Histogram::new();
        let mut x = 77u64;
        for i in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> 35;
            if i % 2 == 0 {
                h1.record(v);
            } else {
                h2.record(v);
            }
            hu.record(v);
        }
        let mut merged = h1.snapshot();
        merged.merge(&h2.snapshot());
        assert_eq!(merged, hu.snapshot());
    }
}

//! The flight recorder: a fixed-size lock-free ring of recent annotated
//! events — the serving layer's black box.
//!
//! Writers (`record`) claim a slot with one `fetch_add` on a global
//! cursor and publish the payload under a per-slot seqlock (odd version
//! while writing, even when stable).  Readers (`dump`) never block
//! writers: a slot whose version is odd or changes mid-read is simply a
//! torn slot and is skipped.  Everything is acquire/release atomics in
//! safe Rust; a record is ~8 uncontended atomic stores, cheap enough to
//! leave on for every engine command.
//!
//! # Ordering protocol
//!
//! The payload stores are `Release` and the payload loads `Acquire` —
//! not `Relaxed`, as a first reading of the classic seqlock might
//! suggest.  With relaxed payload accesses a reader can observe a
//! *newer* payload word between two version loads that both return the
//! old even value (nothing orders the payload reads against the second
//! version check), admitting a mixed-generation record.  Release on
//! each payload store publishes the writer's claim (the odd version
//! bump that program-order precedes it) together with the word, and the
//! acquire payload load joins that knowledge, forcing the reader's
//! second version read to see at least the claim — version mismatch,
//! slot skipped.  The interleaving model checker in `rls-detlint`
//! (`SeqlockModel`, mirroring this protocol op for op) verifies this
//! exhaustively at small sizes and produces the torn-read
//! counterexample whenever any of these orderings is weakened back to
//! `Relaxed`; the multi-thread stress test in `tests/flight_stress.rs`
//! hammers the real ring.  See `docs/DETERMINISM.md`.

use std::sync::atomic::{AtomicU64, Ordering};

/// One recorded event, decoded from a ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number of the event (monotone across the run).
    pub seq: u64,
    /// Command kind code (the producer defines the enumeration; the
    /// serve layer uses its `EngineCmd` discriminants).
    pub kind: u64,
    /// First coordinate (bin / source, producer-defined).
    pub a: u64,
    /// Second coordinate (picked flag / dest, producer-defined).
    pub b: u64,
    /// Nanoseconds the command waited in the queue before the engine
    /// picked it up.
    pub queue_ns: u64,
    /// Nanoseconds the engine spent applying the command.
    pub apply_ns: u64,
}

#[derive(Debug)]
struct Slot {
    /// Seqlock version: odd while a writer owns the slot, even when the
    /// payload is stable. Starts at 0 (empty, even).
    version: AtomicU64,
    payload: [AtomicU64; 6],
}

impl Slot {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            payload: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-capacity lock-free ring buffer of [`FlightEvent`]s.
///
/// Capacity is rounded up to a power of two. Old events are overwritten
/// once the ring wraps; `dump` returns the surviving window in sequence
/// order.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    mask: u64,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent ~`capacity` events
    /// (rounded up to a power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, Slot::new);
        Self {
            slots,
            mask: (cap as u64) - 1,
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        // ORDERING: relaxed — a statistical count; monotonicity comes
        // from fetch_add atomicity, no payload is guarded by it.
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records an event. Lock-free and safe from any thread.
    pub fn record(&self, kind: u64, a: u64, b: u64, queue_ns: u64, apply_ns: u64) {
        // ORDERING: relaxed — the cursor only allocates sequence
        // numbers; fetch_add atomicity alone makes them unique.
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Claim: bump to odd so readers skip the slot mid-write.  The
        // ordering of the claim itself is immaterial to admission (the
        // Release payload stores below publish it; the model checker's
        // `relaxed_claim_alone_is_still_sound` test pins this), Release
        // kept for symmetry with the publish bump.
        slot.version.fetch_add(1, Ordering::Release);
        // Release on every payload word: publishes the odd claim along
        // with the word, so a reader that acquires any in-flight word is
        // forced to see the claim at its second version check (see the
        // module-level ordering protocol).
        slot.payload[0].store(seq, Ordering::Release);
        slot.payload[1].store(kind, Ordering::Release);
        slot.payload[2].store(a, Ordering::Release);
        slot.payload[3].store(b, Ordering::Release);
        slot.payload[4].store(queue_ns, Ordering::Release);
        slot.payload[5].store(apply_ns, Ordering::Release);
        // Publish: bump back to even; Release makes the payload visible
        // to readers that acquire this even version.
        slot.version.fetch_add(1, Ordering::Release);
    }

    /// Snapshots the ring: every stable slot, decoded and sorted by
    /// sequence number. Slots mid-write (or torn by a concurrent wrap)
    /// are skipped rather than waited on — a dump never stalls the
    /// engine.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or a writer is mid-flight
            }
            // Acquire on the payload words: joining the Release payload
            // stores is what forces the v2 check below to observe the
            // claim of any writer whose words we partially read.
            let payload: [u64; 6] =
                std::array::from_fn(|i| slot.payload[i].load(Ordering::Acquire));
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 != v2 {
                continue; // torn read: a writer replaced the slot
            }
            out.push(FlightEvent {
                seq: payload[0],
                kind: payload[1],
                a: payload[2],
                b: payload[3],
                queue_ns: payload[4],
                apply_ns: payload[5],
            });
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 8);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(1024).capacity(), 1024);
    }

    #[test]
    fn dump_returns_events_in_order() {
        let r = FlightRecorder::new(16);
        for i in 0..10u64 {
            r.record(1, i, 0, i * 10, i * 100);
        }
        let events = r.dump();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            let i = i as u64;
            assert_eq!(e.seq, i);
            assert_eq!(e.a, i);
            assert_eq!(e.queue_ns, i * 10);
            assert_eq!(e.apply_ns, i * 100);
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent_window() {
        let r = FlightRecorder::new(8);
        for i in 0..100u64 {
            r.record(2, i, 0, 0, 0);
        }
        let events = r.dump();
        assert_eq!(events.len(), 8);
        assert_eq!(r.recorded(), 100);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_dump() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Self-checking payload: a == b == queue == apply.
                        let v = t * 1_000_000 + i;
                        r.record(t, v, v, v, v);
                    }
                })
            })
            .collect();
        // Dump concurrently while writers run.
        for _ in 0..50 {
            for e in r.dump() {
                assert_eq!(e.a, e.b, "torn slot leaked into dump");
                assert_eq!(e.a, e.queue_ns);
                assert_eq!(e.a, e.apply_ns);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let final_dump = r.dump();
        assert_eq!(final_dump.len(), 64);
        assert_eq!(r.recorded(), 20_000);
        for e in final_dump {
            assert_eq!(e.a, e.b);
        }
    }
}

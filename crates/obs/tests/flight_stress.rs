//! Multi-writer / multi-reader stress test for the [`FlightRecorder`]
//! seqlock ring.
//!
//! The interleaving model checker in `rls-detlint` proves the ordering
//! protocol sound at small sizes; this test hammers the real ring with
//! real threads as the empirical complement.  Every record carries a
//! self-checking payload (all four data words derived from one value),
//! so a single torn slot that leaks through the version check is caught
//! immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rls_obs::FlightRecorder;

/// Derives the four payload words from a writer id and iteration so a
/// mixed-generation record can never satisfy all equations at once.
fn payload(writer: u64, i: u64) -> (u64, u64, u64, u64) {
    let v = writer << 32 | i;
    (v, v.wrapping_mul(3), v ^ 0xdead_beef, v.wrapping_add(7))
}

/// Checks one dumped event against the payload equations.
fn check(e: &rls_obs::FlightEvent) {
    let (a, b, q, ap) = payload(e.kind, e.a & 0xffff_ffff);
    assert_eq!(e.a, a, "torn slot: coordinate a");
    assert_eq!(e.b, b, "torn slot: coordinate b");
    assert_eq!(e.queue_ns, q, "torn slot: queue_ns");
    assert_eq!(e.apply_ns, ap, "torn slot: apply_ns");
}

#[test]
fn concurrent_writers_and_readers_see_no_torn_records() {
    const WRITERS: u64 = 4;
    const READERS: usize = 3;
    const PER_WRITER: u64 = 20_000;

    let ring = Arc::new(FlightRecorder::new(128));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let (a, b, q, ap) = payload(w, i);
                    ring.record(w, a, b, q, ap);
                }
            });
        }
        for _ in 0..READERS {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                // Dump continuously until the writers finish; every
                // admitted record must satisfy the payload equations and
                // the window must stay sorted and duplicate-free.
                let mut dumps = 0u64;
                while !stop.load(Ordering::Acquire) || dumps == 0 {
                    let events = ring.dump();
                    for pair in events.windows(2) {
                        assert!(pair[0].seq < pair[1].seq, "dump not strictly sorted");
                    }
                    for e in &events {
                        check(e);
                    }
                    dumps += 1;
                }
            });
        }
        // Writers are the first WRITERS spawned threads; the scope joins
        // everything, so just flag the readers down once writers are done.
        // (Scoped threads have no handle order guarantee across the two
        // loops above, so writers signal completion via the cursor.)
        while ring.recorded() < WRITERS * PER_WRITER {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // Quiesced: the ring holds exactly the last `capacity` records, all
    // intact, strictly sequenced, and the cursor accounts for every
    // record ever made.
    assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
    let final_dump = ring.dump();
    assert_eq!(final_dump.len(), ring.capacity());
    for e in &final_dump {
        check(e);
    }
    let first = final_dump.first().expect("non-empty").seq;
    let last = final_dump.last().expect("non-empty").seq;
    assert_eq!(last, WRITERS * PER_WRITER - 1, "newest record survives");
    assert_eq!(
        last - first + 1,
        ring.capacity() as u64,
        "surviving window is contiguous"
    );
}

#[test]
fn single_writer_window_is_gapless_under_concurrent_dumps() {
    let ring = Arc::new(FlightRecorder::new(32));
    std::thread::scope(|scope| {
        let writer_ring = Arc::clone(&ring);
        scope.spawn(move || {
            for i in 0..50_000u64 {
                let (a, b, q, ap) = payload(0, i);
                writer_ring.record(0, a, b, q, ap);
            }
        });
        for _ in 0..2 {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for _ in 0..200 {
                    // With one writer a dump can only miss the slots being
                    // rewritten right now; admitted ones are never torn.
                    for e in ring.dump() {
                        check(&e);
                    }
                }
            });
        }
    });
    assert_eq!(ring.recorded(), 50_000);
}

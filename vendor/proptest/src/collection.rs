//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// An inclusive length range for collection strategies.
///
/// Built via `From` conversions from `usize` ranges, which also pins
/// unsuffixed integer literals (`1..=12`) to `usize` — mirroring the real
/// crate's `Into<SizeRange>` API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s whose length lies in `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.hi - self.len.lo) as u64;
        let n = self.len.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

//! # proptest (vendored stand-in)
//!
//! The workspace builds offline, so this shim replaces the crates-io
//! `proptest` with the subset its property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, integer/float range strategies,
//! [`Just`], tuple strategies, [`collection::vec`], [`ProptestConfig`] and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence (no env-var override) and failing cases are
//! **not shrunk** — the panic message reports the failing values via the
//! assertion itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Mirror of the real crate's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

// ---------------------------------------------------------------------------
// Deterministic generator (splitmix64; self-contained on purpose).
// ---------------------------------------------------------------------------

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        // Multiply-shift; the tiny bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Configuration for [`TestRunner`] (mirror of the real crate's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case does not satisfy its
/// preconditions; the runner retries with fresh inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCaseReject;

/// Drives the cases of one property (deterministic seeds, no shrinking).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Run the property until `config.cases` cases pass.  Panics (from the
    /// property's own assertions) on the first failing case; panics if too
    /// many cases are rejected by `prop_assume!`.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseReject>,
    {
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = (self.config.cases as u64).saturating_mul(20).max(1000);
        while passed < self.config.cases {
            assert!(
                attempts < max_attempts,
                "gave up after {attempts} attempts: prop_assume! rejected too many cases \
                 ({passed}/{} passed)",
                self.config.cases
            );
            let mut rng = TestRng::new(0xC0DE_5EED ^ attempts.wrapping_mul(0x2545_F491_4F6C_DD1D));
            attempts += 1;
            if case(&mut rng).is_ok() {
                passed += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Define property tests: `fn name(pattern in strategy, ...) { body }`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            runner.run(|__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                let result: ::core::result::Result<(), $crate::TestCaseReject> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                result
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

/// Reject the current case (the runner draws a fresh one) when a
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(y <= 4);
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::new(2);
        let s = (1u64..5)
            .prop_map(|x| x * 10)
            .prop_flat_map(|x| (Just(x), 0u64..x));
        for _ in 0..100 {
            let (x, y) = s.generate(&mut rng);
            assert!(x % 10 == 0 && y < x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_strategy(v in prop::collection::vec(0u64..100, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_filters_cases((a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}

//! Deserialization error type and the helpers the derive macro expands to.

use std::fmt;

use crate::{Deserialize, Map, Value};

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, found Y" for a mismatched value kind.
    pub fn type_error(expected: &str, found: &Value) -> Self {
        Self::custom(format!(
            "expected {expected}, found {} ({found})",
            found.kind()
        ))
    }

    /// A required object field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum string/tag did not name a known variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Prefix the message with context (used when descending into fields).
    pub fn context(self, what: &str) -> Self {
        Self::custom(format!("{what}: {}", self.message))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Expect an object (derive helper).
pub fn expect_object<'v>(ty: &str, v: &'v Value) -> Result<&'v Map, Error> {
    v.as_object()
        .ok_or_else(|| Error::type_error("object", v).context(ty))
}

/// Fetch and deserialize a struct field (derive helper).  Missing fields
/// fall back to [`Deserialize::absent`], so `Option` fields may be omitted.
pub fn get_field<T: Deserialize>(ty: &str, map: &Map, field: &str) -> Result<T, Error> {
    match map.get(field) {
        Some(v) => T::from_value(v).map_err(|e| e.context(&format!("{ty}.{field}"))),
        None => T::absent().ok_or_else(|| Error::missing_field(ty, field)),
    }
}

/// Interpret an externally-tagged enum value (derive helper): either a bare
/// string (unit variant) or a single-entry object `{tag: payload}`.
pub fn enum_tag<'v>(ty: &str, v: &'v Value) -> Result<(&'v str, Option<&'v Value>), Error> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Object(map) if map.len() == 1 => {
            let (tag, payload) = map.iter().next().expect("len checked");
            Ok((tag, Some(payload)))
        }
        other => Err(Error::type_error("enum (string or single-key object)", other).context(ty)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_helpers() {
        let mut m = Map::new();
        m.insert("x", Value::UInt(3));
        assert_eq!(get_field::<u64>("T", &m, "x").unwrap(), 3);
        assert!(get_field::<u64>("T", &m, "y").is_err());
        assert_eq!(get_field::<Option<u64>>("T", &m, "y").unwrap(), None);
    }

    #[test]
    fn enum_tag_shapes() {
        let unit = Value::Str("A".into());
        let (tag, payload) = enum_tag("E", &unit).unwrap();
        assert_eq!((tag, payload), ("A", None));
        let mut m = Map::new();
        m.insert("B", Value::UInt(1));
        let v = Value::Object(m);
        let (tag, payload) = enum_tag("E", &v).unwrap();
        assert_eq!(tag, "B");
        assert_eq!(payload, Some(&Value::UInt(1)));
        assert!(enum_tag("E", &Value::Int(1)).is_err());
    }
}

//! # serde (vendored stand-in)
//!
//! This workspace builds fully offline, so instead of the crates-io `serde`
//! it vendors this minimal, API-compatible core: a self-describing
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that convert to and
//! from that tree, and re-exported derive macros (from the sibling
//! `serde_derive` shim) that generate the conversions for plain structs and
//! enums.
//!
//! Representation conventions match upstream serde's defaults so that any
//! JSON written by this shim stays readable if the real serde is ever
//! dropped in:
//!
//! * structs ⇒ JSON objects, fields in declaration order;
//! * unit enum variants ⇒ the variant name as a string;
//! * newtype/tuple variants ⇒ `{"Variant": payload}`;
//! * struct variants ⇒ `{"Variant": {fields…}}`;
//! * `Option::None` ⇒ `null`, and missing object fields deserialize as
//!   `None` for `Option` fields.
//!
//! Unsupported (not needed by this workspace): generics on derived types,
//! `#[serde(...)]` attributes, borrowed/zero-copy deserialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

/// Serialize `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing value tree.
    fn to_value(&self) -> Value;

    /// Append `self` as *compact* JSON text directly to `out` — the
    /// streaming fast path used by `serde_json::to_string`, which skips
    /// building the intermediate [`Value`] tree (and all its key/number
    /// allocations) on hot serialization paths.
    ///
    /// Implementations MUST produce byte-identical output to compact-
    /// rendering `self.to_value()`; the default does exactly that, so
    /// hand-written `Serialize` impls stay correct without opting in.
    fn write_json(&self, out: &mut String) {
        value::write_compact(&self.to_value(), out);
    }
}

/// Deserialize `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the self-describing value tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;

    /// The value to use when an object field of this type is missing.
    ///
    /// `None` means "missing is an error"; `Option<T>` overrides this to
    /// produce `Ok(None)`, matching upstream serde's treatment of optional
    /// fields in self-describing formats.
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }

            fn write_json(&self, out: &mut String) {
                value::write_json_u64(*self as u64, out);
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }

            fn write_json(&self, out: &mut String) {
                value::write_json_i64(*self as i64, out);
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }

    fn write_json(&self, out: &mut String) {
        value::write_json_f64(*self as f64, out);
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }

    fn write_json(&self, out: &mut String) {
        value::write_json_f64(*self, out);
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }

    fn write_json(&self, out: &mut String) {
        value::write_json_str(self, out);
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn write_json(&self, out: &mut String) {
        value::write_json_str(self, out);
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn write_json(&self, out: &mut String) {
        value::write_json_str(self.encode_utf8(&mut [0u8; 4]), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Some(x) => x.write_json(out),
            None => out.push_str("null"),
        }
    }
}

/// Stream a sequence as a JSON array.
fn write_json_seq<'a, T: Serialize + 'a>(
    items: impl Iterator<Item = &'a T>,
    out: &mut String,
) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }

    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }

    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(',');
        self.2.write_json(out);
        out.push(']');
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn write_json(&self, out: &mut String) {
        value::write_compact(self, out);
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            value::write_json_str(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let x = v.as_u64().ok_or_else(|| de::Error::type_error("unsigned integer", v))?;
                <$t>::try_from(x).map_err(|_| {
                    de::Error::custom(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let x = v.as_i64().ok_or_else(|| de::Error::type_error("integer", v))?;
                <$t>::try_from(x).map_err(|_| {
                    de::Error::custom(format!("{x} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::type_error("bool", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::type_error("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::type_error("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::type_error("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = Vec::<T>::from_value(v)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format!("expected an array of length {N}, got {found}")))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(de::Error::type_error("2-element array", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(de::Error::type_error("3-element array", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::type_error("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip_and_absence() {
        assert_eq!(Some(3u64).to_value(), Value::UInt(3));
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::absent(), Some(None));
        assert_eq!(u64::absent(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let pair = (1u64, "x".to_string());
        assert_eq!(<(u64, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }
}

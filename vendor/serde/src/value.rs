//! The self-describing value tree shared by `serde` and `serde_json`.

use std::fmt;

/// An order-preserving string-keyed map (objects keep field declaration
/// order, which keeps serialized files human-readable and diffable).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Insert a key (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Entries sorted by key (for canonical output).
    pub fn sorted_entries(&self) -> Vec<(&String, &Value)> {
        let mut v: Vec<_> = self.entries.iter().map(|(k, val)| (k, val)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-shaped value: the common currency of serialization in this
/// workspace.  Integers keep their signedness so `u64`/`i64` round-trip
/// exactly (floats are only used when a value is actually fractional or was
/// written as a float).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used for values above `i64::MAX` and by the
    /// unsigned `Serialize` impls).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

impl Value {
    /// View as `u64` if the value is a non-negative integer (or an exactly
    /// integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) if *x >= 0 => Some(*x as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// View as `i64` if the value is an integer (or an exactly integral
    /// float) in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            Value::UInt(x) => i64::try_from(*x).ok(),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// View as `f64` if the value is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// View as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// A short name for the value's kind (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

// ---------------------------------------------------------------------------
// Compact writer: the streaming backend of `Serialize::write_json`.
// Byte-identical to `serde_json::to_string`'s compact rendering (which is
// asserted by tests over there) — both must change together.
// ---------------------------------------------------------------------------

/// Append `v` as compact JSON to `out`.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => write_json_i64(*x, out),
        Value::UInt(x) => write_json_u64(*x, out),
        Value::Float(x) => write_json_f64(*x, out),
        Value::Str(s) => write_json_str(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Append `v` in decimal without allocating.
pub fn write_json_u64(mut v: u64, out: &mut String) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Plain ASCII digits are valid UTF-8.
    out.push_str(std::str::from_utf8(&digits[i..]).expect("decimal digits are UTF-8"));
}

/// Append `v` in decimal without allocating.
pub fn write_json_i64(v: i64, out: &mut String) {
    if v < 0 {
        out.push('-');
        write_json_u64(v.unsigned_abs(), out);
    } else {
        write_json_u64(v as u64, out);
    }
}

/// Append `v` the way JSON rendering prints floats: `{}` (integral floats
/// without a fractional part, which round-trips exactly through the
/// numeric `Deserialize` impls), and `null` for non-finite values.
pub fn write_json_f64(v: f64, out: &mut String) {
    use fmt::Write as _;
    if v.is_finite() {
        write!(out, "{v}").expect("writing to a String cannot fail");
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// `Display` for `Value` only needs to be good enough for error messages; the
// real rendering lives in `serde_json`.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::UInt(x) => write!(f, "{x}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(_) => write!(f, "<array>"),
            Value::Object(_) => write!(f, "<object>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Int(1));
        m.insert("a", Value::Int(2));
        m.insert("b", Value::Int(3));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Int(3)));
        let sorted: Vec<&str> = m.sorted_entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(sorted, ["a", "b"]);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Value::UInt(5).as_f64(), Some(5.0));
    }
}

//! # serde_json (vendored stand-in)
//!
//! JSON text ⇄ the vendored `serde` [`Value`] tree.  Provides the handful
//! of entry points this workspace uses — [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], [`from_value`] — plus [`to_canonical_string`]
//! (sorted object keys, no whitespace), which the campaign results store
//! uses for content addressing.
//!
//! The parser accepts exactly RFC-8259 JSON (with `\uXXXX` escapes and
//! surrogate pairs); numbers parse to `Int`/`UInt` when they are integral
//! and in range, and to `Float` otherwise, so 64-bit counters round-trip
//! exactly.  Non-finite floats serialize as `null`, matching upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::{Map, Value};

use serde::{Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize any `Serialize` type to its value tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserialize any `Deserialize` type from a value tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serialize to compact JSON text.
///
/// Streams through [`Serialize::write_json`], skipping the intermediate
/// [`Value`] tree; the result is byte-identical to compact-rendering
/// `value.to_value()` (asserted by `streaming_to_string_matches_tree_rendering`
/// below).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(128);
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0, false);
    Ok(out)
}

/// Serialize to *canonical* JSON: compact, with object keys sorted
/// lexicographically.  Equal values always produce byte-identical text, so
/// the output is suitable for hashing / content addressing.
pub fn to_canonical_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0, true);
    out
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize, canonical: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{}` prints integral floats without a fractional part
                // ("3"); that re-parses as an integer, which the numeric
                // `Deserialize` impls accept, so round-trips stay exact.
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1, canonical);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            let entries: Vec<(&String, &Value)> = if canonical {
                map.sorted_entries()
            } else {
                map.iter().collect()
            };
            for (i, (k, val)) in entries.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1, canonical);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.5",
            "18446744073709551615",
        ] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn integers_keep_exact_width() {
        assert_eq!(
            parse_value("9007199254740993").unwrap(),
            Value::Int(9007199254740993)
        );
        assert_eq!(
            parse_value("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1F600}\u{7}".to_string());
        let text = to_string(&v).unwrap();
        assert_eq!(parse_value(&text).unwrap(), v);
        // \u escapes and surrogate pairs parse.
        assert_eq!(
            parse_value(r#""A😀""#).unwrap(),
            Value::Str("A\u{1F600}".to_string())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn canonical_sorts_keys() {
        let v = parse_value(r#"{"b":1,"a":{"d":2,"c":3}}"#).unwrap();
        assert_eq!(to_canonical_string(&v), r#"{"a":{"c":3,"d":2},"b":1}"#);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        assert!(parse_value("01x").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    /// `to_string` streams via `Serialize::write_json`; the tree renderer
    /// (`write_value`) is the reference.  Both must stay byte-identical —
    /// repo-wide snapshot and bit-equality tests ride on this invariant.
    #[test]
    fn streaming_to_string_matches_tree_rendering() {
        let gnarly = [
            r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#,
            r#"{"s":"quote \" slash \\ tab \t nl \n ctl \u0001","e":{},"v":[[],[[]]]}"#,
            r#"[-9223372036854775808,18446744073709551615,0,-0.5,1e300]"#,
            r#"{"unicode":"héllo \u00e9 ☃","deep":{"x":{"y":{"z":[true,false,null]}}}}"#,
        ];
        for text in gnarly {
            let v = parse_value(text).unwrap();
            let mut tree = String::new();
            write_value(&mut tree, &v, None, 0, false);
            assert_eq!(to_string(&v).unwrap(), tree, "diverged on {text}");
        }
    }
}

//! # serde_derive (vendored stand-in)
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` shim, written directly against `proc_macro` (the workspace
//! builds offline, so `syn`/`quote` are unavailable).
//!
//! The input is tokenized with a tiny hand-rolled scanner that understands
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields (any visibility, no generics);
//! * enums whose variants are unit, single-field tuple, multi-field tuple,
//!   or struct-like.
//!
//! Generated code follows upstream serde's externally-tagged conventions —
//! see the `serde` shim's crate docs.  Anything unsupported (generics,
//! unions, tuple structs, `#[serde(...)]` attributes) fails the build with a
//! clear compile error rather than generating something subtly wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&item.kind, mode) {
        (ItemKind::Struct(fields), Mode::Serialize) => struct_serialize(&item.name, fields),
        (ItemKind::Struct(fields), Mode::Deserialize) => struct_deserialize(&item.name, fields),
        (ItemKind::Enum(variants), Mode::Serialize) => enum_serialize(&item.name, variants),
        (ItemKind::Enum(variants), Mode::Deserialize) => enum_deserialize(&item.name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Rust; this is a bug in the shim")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("valid compile_error")
}

// ---------------------------------------------------------------------------
// Input model.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct-like variant with these field names.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing.  The scanner walks top-level tokens, skipping attributes and
// visibility, until it finds `struct Name {...}` or `enum Name {...}`.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected the type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`; write the impls by hand"
        ));
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "serde shim derive does not support unit/tuple struct `{name}`"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("serde shim derive: no body found for `{name}`")),
        }
    };

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_named_fields(body)?),
        "enum" => ItemKind::Enum(parse_variants(body)?),
        other => {
            return Err(format!(
                "serde shim derive: cannot derive for `{other}` items"
            ))
        }
    };
    Ok(Item { name, kind })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]`
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            // `pub`, optionally followed by `(crate)` / `(super)` / ...
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` (named fields of a struct or struct variant),
/// returning the field names in declaration order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected a field name, found `{other}`"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ))
            }
        }
        skip_type(&tokens, &mut i)?;
        fields.push(name);
        // Skip the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past a type, stopping at a top-level `,` (angle-bracket depth
/// aware, so `Map<String, u64>` is one type).
fn skip_type(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    let mut angle_depth: i64 = 0;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if angle_depth == 0 => return Ok(()),
                '<' => {
                    angle_depth += 1;
                    *i += 1;
                }
                '>' => {
                    angle_depth -= 1;
                    if angle_depth < 0 {
                        return Err("serde shim derive: unbalanced `>` in a type".into());
                    }
                    *i += 1;
                }
                // `->` only appears inside fn-pointer types; consume it so
                // its `>` is not mistaken for a closing angle bracket.
                '-' => {
                    *i += 1;
                    if matches!(tokens.get(*i), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                        *i += 1;
                    }
                }
                _ => *i += 1,
            },
            _ => *i += 1,
        }
    }
    if angle_depth != 0 {
        return Err("serde shim derive: unbalanced `<` in a type".into());
    }
    Ok(())
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected a variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream())?;
                i += 1;
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        // Discriminant (`= expr`) would only appear on unit variants of
        // C-like enums; none of our types use one with data.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde shim derive: explicit discriminants are not supported".into());
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Count the comma-separated fields of a tuple variant.
fn count_tuple_fields(body: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return Ok(0);
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i)?;
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Code generation (as source text; `TokenStream::parse` turns it back into
// tokens).  All paths are absolute (`::serde::...`) so local names cannot
// shadow them.
// ---------------------------------------------------------------------------

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts.push_str(&format!(
            "map.insert({f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    // The streaming body mirrors `to_value` + compact rendering exactly:
    // fields in declaration order, `"name":value` joined by commas.  Field
    // names are Rust identifiers, so the emitted key literals never need
    // JSON escaping.
    let mut writes = String::new();
    for (i, f) in fields.iter().enumerate() {
        let key = if i == 0 {
            format!("\"{f}\":")
        } else {
            format!(",\"{f}\":")
        };
        writes.push_str(&format!(
            "out.push_str({key:?});
             ::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::Value {{
                let mut map = ::serde::Map::new();
                {inserts}
                ::serde::Value::Object(map)
            }}

            fn write_json(&self, out: &mut ::std::string::String) {{
                out.push('{{');
                {writes}
                out.push('}}');
            }}
        }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut gets = String::new();
    for f in fields {
        gets.push_str(&format!(
            "{f}: ::serde::de::get_field({name:?}, map, {f:?})?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{
                let map = ::serde::de::expect_object({name:?}, v)?;
                ::core::result::Result::Ok({name} {{ {gets} }})
            }}
        }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    // Streaming arms: same shapes as `to_value` rendered compactly.
    // Variant and field names are Rust identifiers, so the emitted key
    // literals never need JSON escaping.
    let mut warms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                ));
                let lit = format!("\"{vn}\"");
                warms.push_str(&format!("{name}::{vn} => out.push_str({lit:?}),\n"));
            }
            VariantShape::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(x0) => {{
                        let mut map = ::serde::Map::new();
                        map.insert({vn:?}, ::serde::Serialize::to_value(x0));
                        ::serde::Value::Object(map)
                    }}\n"
                ));
                let open = format!("{{\"{vn}\":");
                warms.push_str(&format!(
                    "{name}::{vn}(x0) => {{
                        out.push_str({open:?});
                        ::serde::Serialize::write_json(x0, out);
                        out.push('}}');
                    }}\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|k| format!("x{k}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{
                        let mut map = ::serde::Map::new();
                        map.insert({vn:?}, ::serde::Value::Array(vec![{elems}]));
                        ::serde::Value::Object(map)
                    }}\n",
                    binds = binds.join(", "),
                    elems = elems.join(", "),
                ));
                let open = format!("{{\"{vn}\":[");
                let writes: Vec<String> = binds
                    .iter()
                    .enumerate()
                    .map(|(k, b)| {
                        let comma = if k > 0 { "out.push(',');\n" } else { "" };
                        format!("{comma}::serde::Serialize::write_json({b}, out);")
                    })
                    .collect();
                warms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{
                        out.push_str({open:?});
                        {writes}
                        out.push_str(\"]}}\");
                    }}\n",
                    binds = binds.join(", "),
                    writes = writes.join("\n"),
                ));
            }
            VariantShape::Struct(fields) => {
                let binds = fields.join(", ");
                let mut inserts = String::new();
                for f in fields {
                    inserts.push_str(&format!(
                        "inner.insert({f:?}, ::serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{
                        let mut inner = ::serde::Map::new();
                        {inserts}
                        let mut map = ::serde::Map::new();
                        map.insert({vn:?}, ::serde::Value::Object(inner));
                        ::serde::Value::Object(map)
                    }}\n"
                ));
                let open = format!("{{\"{vn}\":{{");
                let mut writes = String::new();
                for (i, f) in fields.iter().enumerate() {
                    let key = if i == 0 {
                        format!("\"{f}\":")
                    } else {
                        format!(",\"{f}\":")
                    };
                    writes.push_str(&format!(
                        "out.push_str({key:?});
                         ::serde::Serialize::write_json({f}, out);\n"
                    ));
                }
                warms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{
                        out.push_str({open:?});
                        {writes}
                        out.push_str(\"}}}}\");
                    }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{
            fn to_value(&self) -> ::serde::Value {{
                match self {{ {arms} }}
            }}

            fn write_json(&self, out: &mut ::std::string::String) {{
                match self {{ {warms} }}
            }}
        }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{vn:?} => {{
                        ::core::result::Result::Ok({name}::{vn})
                    }}\n"
                ));
            }
            VariantShape::Tuple(1) => {
                arms.push_str(&format!(
                    "{vn:?} => {{
                        let payload = payload.ok_or_else(|| ::serde::de::Error::custom(
                            concat!(\"variant \", {vn:?}, \" of \", {name:?}, \" needs a payload\")))?;
                        ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?))
                    }}\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let mut elems = String::new();
                for k in 0..*arity {
                    elems.push_str(&format!("::serde::Deserialize::from_value(&items[{k}])?,"));
                }
                arms.push_str(&format!(
                    "{vn:?} => {{
                        let payload = payload.ok_or_else(|| ::serde::de::Error::custom(
                            concat!(\"variant \", {vn:?}, \" of \", {name:?}, \" needs a payload\")))?;
                        let items = payload.as_array().ok_or_else(|| ::serde::de::Error::type_error(\"array\", payload))?;
                        if items.len() != {arity} {{
                            return ::core::result::Result::Err(::serde::de::Error::custom(
                                concat!(\"variant \", {vn:?}, \" of \", {name:?}, \" expects {arity} elements\")));
                        }}
                        ::core::result::Result::Ok({name}::{vn}({elems}))
                    }}\n"
                ));
            }
            VariantShape::Struct(fields) => {
                let mut gets = String::new();
                for f in fields {
                    gets.push_str(&format!(
                        "{f}: ::serde::de::get_field({name:?}, inner, {f:?})?,\n"
                    ));
                }
                arms.push_str(&format!(
                    "{vn:?} => {{
                        let payload = payload.ok_or_else(|| ::serde::de::Error::custom(
                            concat!(\"variant \", {vn:?}, \" of \", {name:?}, \" needs a payload\")))?;
                        let inner = ::serde::de::expect_object({name:?}, payload)?;
                        ::core::result::Result::Ok({name}::{vn} {{ {gets} }})
                    }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{
                let (tag, payload) = ::serde::de::enum_tag({name:?}, v)?;
                match tag {{
                    {arms}
                    other => ::core::result::Result::Err(::serde::de::Error::unknown_variant({name:?}, other)),
                }}
            }}
        }}"
    )
}

//! # criterion (vendored stand-in)
//!
//! The workspace builds offline, so this shim replaces the crates-io
//! `criterion` with a small wall-clock harness exposing the same surface
//! the bench targets use: [`Criterion`], [`BenchmarkId`], benchmark groups
//! with `sample_size`/`measurement_time`/`warm_up_time`, `bench_function`,
//! `bench_with_input`, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Reporting is deliberately simple: each benchmark prints
//! `<group>/<id>  mean <t> (<samples> samples)` to stdout.  There is no
//! statistical analysis, outlier rejection or HTML report — the targets
//! exist to exercise and eyeball the hot paths, and to keep the real
//! criterion wiring intact for when the genuine crate is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Write as _};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Times one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Run the routine repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up iteration.
        black_box(routine());
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.iter().sum::<Duration>() / self.measured.len() as u32
    }
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: every iteration here is a full simulation.
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.default_samples,
            measured: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &b);
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
        }
    }
}

fn report(name: &str, b: &Bencher) {
    let mut line = String::new();
    let _ = write!(
        line,
        "{name:<50} mean {:>12} ({} samples)",
        human(b.mean()),
        b.measured.len()
    );
    println!("{line}");
    append_json_record(name, b);
}

/// Whether `RLS_BENCH_QUICK` asks benchmarks for a trimmed smoke run
/// (set and neither empty nor `"0"`).  Lives here, beside the
/// `RLS_BENCH_JSON` handling, so every bench target shares one reading of
/// the flag instead of drifting copies.
pub fn quick_mode() -> bool {
    std::env::var("RLS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// When `RLS_BENCH_JSON` names a file, append one JSON-lines record per
/// benchmark — `{"name": ..., "mean_ns": ..., "samples": ...}` — so CI can
/// upload machine-readable results as an artifact without scraping stdout.
fn append_json_record(name: &str, b: &Bencher) {
    let Ok(path) = std::env::var("RLS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let record = format!(
        "{{\"name\": {:?}, \"mean_ns\": {}, \"samples\": {}}}\n",
        name,
        b.mean().as_nanos(),
        b.measured.len()
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = appended {
        eprintln!("RLS_BENCH_JSON: cannot append to {path}: {e}");
    }
}

/// Append a free-form metric record to the `RLS_BENCH_JSON` file —
/// `{"name": ..., "value": ...}` — for numbers a bench derives beyond
/// wall time (throughput counters, telemetry snapshots).  No-op when the
/// variable is unset, like [`quick_mode`]'s sibling handling above.
pub fn append_custom_record(name: &str, value: f64) {
    let Ok(path) = std::env::var("RLS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let record = format!("{{\"name\": {name:?}, \"value\": {value}}}\n");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = appended {
        eprintln!("RLS_BENCH_JSON: cannot append to {path}: {e}");
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// iterations instead of a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`Self::measurement_time`]).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
    }

    /// Finish the group (the shim reports eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + default samples.
        assert_eq!(runs, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 7), &2u32, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert_eq!(runs, 8); // (1 warm-up + 3 samples) * 2
    }

    #[test]
    fn id_renderings() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("n64").to_string(), "n64");
    }

    #[test]
    fn human_durations() {
        assert_eq!(human(Duration::from_nanos(5)), "5 ns");
        assert!(human(Duration::from_micros(5)).ends_with("µs"));
        assert!(human(Duration::from_millis(5)).ends_with("ms"));
        assert!(human(Duration::from_secs(5)).ends_with(" s"));
    }
}

//! End-to-end validation of the headline result (Theorem 1) at test scale:
//! the measured balancing time scales like `ln n + n²/m`, not worse, and
//! tracks the matching lower bounds.

use rls_analysis::bounds::TheoremOneBound;
use rls_analysis::{lower_bound_all_in_one_bin, lower_bound_one_over_one_under};
use rls_core::RlsRule;
use rls_sim::stats::log_log_fit;
use rls_sim::{MonteCarlo, RlsPolicy, StopWhen};
use rls_workloads::Workload;

fn mean_balancing_time(n: usize, m: u64, trials: usize, seed: u64, workload: Workload) -> f64 {
    let initial = workload
        .generate(n, m, &mut rls_rng::rng_from_seed(seed))
        .unwrap();
    MonteCarlo::new(trials, seed)
        .with_salt(n as u64 ^ m)
        .parallel()
        .run(&initial, StopWhen::perfectly_balanced(), |_| {
            RlsPolicy::new(RlsRule::paper())
        })
        .time
        .mean
}

/// Dense regime (`m = 16n`): the time should grow roughly logarithmically in
/// `n` — far slower than linearly.
#[test]
fn dense_regime_grows_logarithmically() {
    let ns = [16usize, 32, 64, 128];
    let times: Vec<f64> = ns
        .iter()
        .map(|&n| mean_balancing_time(n, 16 * n as u64, 16, 42, Workload::AllInOneBin))
        .collect();
    // Times must grow, but much slower than n: quadrupling n from 32 to 128
    // should clearly less than quadruple the time.  (Empirically the ratio
    // sits near 3.0 for this family — the `ln n + n/16` shape predicts 2.35
    // plus end-game constants — so the bound leaves Monte-Carlo margin
    // while still excluding linear growth's ratio of 4.)
    assert!(
        times[3] > times[0] * 0.5,
        "time should not collapse: {times:?}"
    );
    assert!(
        times[3] < times[1] * 3.6,
        "time grew too fast for a logarithmic law: {times:?}"
    );
    // And the measured/predicted ratio stays in a narrow band.
    for (&n, &t) in ns.iter().zip(times.iter()) {
        let shape = TheoremOneBound::new(n, 16 * n as u64).expected_shape();
        let ratio = t / shape;
        assert!(
            (0.05..5.0).contains(&ratio),
            "n={n}: ratio {ratio} outside the expected band"
        );
    }
}

/// Sparse regime (`m = n`): the `n²/m = n` term dominates, so the time grows
/// roughly linearly in `n` (log–log slope ≈ 1 against n, not 2).
#[test]
fn sparse_regime_grows_linearly() {
    let ns = [16usize, 32, 64, 128];
    let times: Vec<f64> = ns
        .iter()
        .map(|&n| mean_balancing_time(n, n as u64, 8, 43, Workload::AllInOneBin))
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let fit = log_log_fit(&xs, &times);
    assert!(
        (0.5..1.6).contains(&fit.slope),
        "log-log slope {} should be ≈ 1 (n²/m = n regime): times {times:?}",
        fit.slope
    );
}

/// The lower-bound instances are respected: measured times are never
/// meaningfully below the analytic lower bounds.
#[test]
fn lower_bounds_hold() {
    let n = 32;
    let m = 8 * n as u64;
    let t_one_bin = mean_balancing_time(n, m, 10, 44, Workload::AllInOneBin);
    assert!(t_one_bin >= 0.8 * lower_bound_all_in_one_bin(n, m));

    let t_pair = mean_balancing_time(n, m, 20, 45, Workload::OneOverOneUnder);
    let bound = lower_bound_one_over_one_under(n, m);
    // The expected time equals the bound exactly for this instance; allow
    // generous Monte-Carlo slack on both sides.
    assert!(
        (0.4 * bound..2.5 * bound).contains(&t_pair),
        "one-over/one-under time {t_pair} should be ≈ {bound}"
    );
}

/// The w.h.p. form: over many trials from the worst-case start, the maximum
/// observed time stays within a logarithmic factor of the mean (no heavy
/// tail beyond what Theorem 1 allows).
#[test]
fn no_heavy_tail_beyond_the_whp_bound() {
    let n = 32;
    let m = 32 * 8;
    let initial = Workload::AllInOneBin
        .generate(n, m, &mut rls_rng::rng_from_seed(46))
        .unwrap();
    let report =
        MonteCarlo::new(40, 46)
            .parallel()
            .run(&initial, StopWhen::perfectly_balanced(), |_| {
                RlsPolicy::new(RlsRule::paper())
            });
    let whp = TheoremOneBound::new(n, m).whp_shape();
    assert!(
        report.time.max <= 3.0 * whp,
        "max time {} exceeds 3x the w.h.p. shape {whp}",
        report.time.max
    );
    assert_eq!(report.goal_rate, 1.0);
}

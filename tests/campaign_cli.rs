//! Acceptance test for the campaign workflow: the shipped Theorem-1
//! scaling spec runs end-to-end through the CLI's campaign commands,
//! persists to a disk store, and a second invocation executes zero cells.

use rls::cli::{execute_campaign, parse_campaign_args, CampaignCommand};

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn theorem1_spec_runs_end_to_end_and_caches() {
    let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/theorem1_scaling.toml");
    let base = std::env::temp_dir().join(format!("rls-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = base.join("store").to_string_lossy().to_string();

    // `campaign run` — executes the full grid.
    let run = parse_campaign_args(&strings(&["run", spec, "--store", &store])).unwrap();
    let summary = execute_campaign(&run).unwrap();
    assert!(
        summary.contains("6 cells (6 executed, 0 cached)"),
        "first run should execute the whole grid: {summary}"
    );

    // Results are on disk.
    assert!(base.join("store").is_dir());
    let status = execute_campaign(&CampaignCommand::Status {
        spec: spec.to_string(),
        store: store.clone(),
    })
    .unwrap();
    assert!(status.contains("6 cells, 6 cached, 0 to run"), "{status}");

    // Second invocation: zero re-executed cells.
    let summary = execute_campaign(&run).unwrap();
    assert!(
        summary.contains("6 cells (0 executed, 6 cached)"),
        "second run must be fully served from the store: {summary}"
    );

    // Export reads the same store and covers every cell.
    let export =
        parse_campaign_args(&strings(&["export", spec, "--store", &store, "--csv"])).unwrap();
    let csv = execute_campaign(&export).unwrap();
    assert_eq!(csv.trim().lines().count(), 7, "header + 6 cells:\n{csv}");
    assert!(csv.lines().skip(1).all(|line| line.contains("rls-geq")));

    let _ = std::fs::remove_dir_all(&base);
}

//! Cross-crate integration tests: the workload, simulation, protocol and
//! analysis crates working together through the experiment harness.

use rls_cli::{run_experiment, ExperimentId, Scale};
use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::{MonteCarlo, RlsPolicy, Simulation, StopWhen};
use rls_workloads::Workload;

/// Every workload can be balanced by the RLS engine end-to-end.
#[test]
fn every_workload_balances_under_rls() {
    let n = 16;
    let m = 160;
    for (i, workload) in [
        Workload::AllInOneBin,
        Workload::UniformRandom,
        Workload::TwoChoices,
        Workload::OneOverOneUnder,
        Workload::Zipf { exponent: 1.2 },
        Workload::BlockImbalance { offset: 5 },
        Workload::Balanced,
    ]
    .iter()
    .enumerate()
    {
        let mut rng = rng_from_seed(1000 + i as u64);
        let initial = workload.generate(n, m, &mut rng).unwrap();
        let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).unwrap();
        let outcome = sim.run(&mut rng, StopWhen::perfectly_balanced());
        assert!(outcome.reached_goal, "{workload:?} failed to balance");
        assert!(sim.config().is_perfectly_balanced());
        assert_eq!(sim.config().m(), m);
    }
}

/// Deterministic replay: the same master seed produces exactly the same
/// Monte-Carlo report, trial for trial, regardless of thread count.
#[test]
fn monte_carlo_replay_is_bit_for_bit() {
    let initial = Config::all_in_one_bin(12, 96).unwrap();
    let run = |threads: usize| {
        MonteCarlo::new(10, 777).with_threads(threads).run(
            &initial,
            StopWhen::perfectly_balanced(),
            |_| RlsPolicy::new(RlsRule::paper()),
        )
    };
    let a = run(1);
    let b = run(4);
    let c = run(1);
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.trials, c.trials);
}

/// The experiment harness runs every experiment at quick scale and each
/// produces a table with at least one data row and a rendered form.
#[test]
fn experiment_harness_smoke_test() {
    for id in ExperimentId::all() {
        let table = run_experiment(id, Scale::Quick, 4242);
        assert!(table.row_count() > 0, "{} produced no rows", id.name());
        let rendered = table.render();
        assert!(rendered.contains("==") && rendered.len() > 40);
    }
}

/// Experiments are reproducible: the same seed yields the same table.
#[test]
fn experiments_are_deterministic_for_a_seed() {
    for id in [ExperimentId::E1Theorem1Scaling, ExperimentId::E6SparseCase] {
        let a = run_experiment(id, Scale::Quick, 9);
        let b = run_experiment(id, Scale::Quick, 9);
        assert_eq!(a, b, "{} is not deterministic", id.name());
    }
}

/// The ball-conservation invariant holds across every protocol the
/// comparison experiments exercise (spot-checked through final
/// configurations reported by the protocol layer).
#[test]
fn comparison_protocols_conserve_balls() {
    use rls_protocols::{RlsProtocol, SelfishDistributed, SelfishGlobal, ThresholdProtocol};
    let n = 12;
    let m = 120;
    let mut rng = rng_from_seed(5);
    let start = Workload::UniformRandom.generate(n, m, &mut rng).unwrap();
    // Protocol outcomes do not expose the final configuration directly, but
    // a discrepancy of x with conserved total implies max load <= avg + x;
    // run each protocol and sanity-check the reported discrepancies are
    // consistent with a conserved total (no negative or absurd values).
    let outcomes = [
        RlsProtocol::paper().run(&start, 1.0, &mut rng),
        SelfishGlobal::new(200).run(&start, 1.0, &mut rng),
        SelfishDistributed::new(200).run(&start, 1.0, &mut rng),
        ThresholdProtocol::average_threshold(200).run(&start, 1.0, &mut rng),
    ];
    for out in outcomes {
        assert!(out.final_discrepancy >= 0.0);
        assert!(out.final_discrepancy <= m as f64);
        assert!(out.activations >= out.migrations);
    }
}

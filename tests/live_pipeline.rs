//! Acceptance tests for the `rls-live` subsystem, end to end through the
//! facade and the CLI: a recorded run replays bit-identically, the sharded
//! engine is thread-count deterministic, and the shipped dynamic campaign
//! spec executes (incrementally) through the campaign engine.

use rls::cli::{execute_campaign, execute_live, parse_live_args, CampaignCommand};
use rls::live::{replay, EventLog};

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn temp_base(tag: &str) -> std::path::PathBuf {
    let base = std::env::temp_dir().join(format!("rls-live-accept-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    base
}

/// The headline acceptance criterion: `live run --record` followed by
/// `live replay` reproduces the final load vector and observer summaries
/// bit-identically, through the real CLI entry points.
#[test]
fn cli_record_then_replay_is_bit_identical() {
    let base = temp_base("replay");
    let log_path = base.join("run.json").to_string_lossy().to_string();

    let run = parse_live_args(&strings(&[
        "run",
        "--n",
        "32",
        "--m",
        "256",
        "--arrival",
        "poisson:2",
        "--time",
        "15",
        "--seed",
        "99",
        "--record",
        &log_path,
    ]))
    .unwrap();
    let out = execute_live(&run).unwrap();
    assert!(out.contains("mean gap"), "{out}");

    // Through the CLI.
    let replayed = execute_live(&parse_live_args(&strings(&["replay", &log_path])).unwrap())
        .expect("replay succeeds");
    assert!(
        replayed.contains("final loads: bit-identical ✓"),
        "{replayed}"
    );
    assert!(
        replayed.contains("observer summary: bit-identical ✓"),
        "{replayed}"
    );

    // And through the library, for the stronger structural checks.
    let log = EventLog::from_json(&std::fs::read_to_string(&log_path).unwrap()).unwrap();
    assert!(!log.events.is_empty());
    let report = replay(&log).unwrap();
    assert!(report.is_faithful());
    assert_eq!(report.final_loads, log.footer.final_loads);
    assert_eq!(report.summary, log.footer.summary);

    // Tamper with one event: flip the decision of the last genuine
    // migration attempt (source ≠ dest, so the flip changes the loads).
    let mut tampered = log.clone();
    let flipped = tampered.events.iter_mut().rev().find_map(|event| {
        if let rls::live::LiveEventKind::Ring {
            source,
            dest,
            moved,
        } = &mut event.kind
        {
            if source != dest {
                *moved = !*moved;
                return Some(());
            }
        }
        None
    });
    assert!(flipped.is_some(), "a 15-time-unit run contains rings");
    let verdict = replay(&tampered);
    assert!(
        verdict.is_err() || !verdict.unwrap().is_faithful(),
        "tampered log must not replay cleanly"
    );
    let _ = std::fs::remove_dir_all(&base);
}

/// The sharded engine's trajectory is a function of the seed and shard
/// configuration only — one worker thread and eight produce the same final
/// state (the meaningful notion of "matches the single-threaded engine" on
/// any host, including single-core CI).
#[test]
fn sharded_engine_is_thread_count_deterministic() {
    use rls::core::{Config, RlsRule};
    use rls::live::{LiveParams, ShardedEngine};
    use rls::workloads::ArrivalProcess;

    let run = |threads: usize| {
        let initial = Config::uniform(64, 8).unwrap();
        let params =
            LiveParams::balanced(ArrivalProcess::Poisson { rate_per_bin: 2.0 }, 64, 512).unwrap();
        let mut engine =
            ShardedEngine::new(initial, params, RlsRule::paper(), 8, 0.25, 777).unwrap();
        engine.run(20.0, 4.0, threads)
    };
    let single = run(1);
    let eight = run(8);
    assert_eq!(single.final_loads, eight.final_loads);
    assert_eq!(single.counters, eight.counters);
    assert_eq!(single.summary, eight.summary);
    // The run actually processed a meaningful stream.
    assert!(single.counters.events > 10_000);
    assert_eq!(
        single.final_loads.iter().sum::<u64>(),
        512 + single.counters.arrivals - single.counters.departures
    );
}

/// The shipped dynamic spec runs end-to-end through `campaign run` and is
/// incremental: the second invocation executes zero cells.
#[test]
fn dynamic_spec_runs_and_caches() {
    let spec = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/dynamic_steady_state.toml"
    );
    let base = temp_base("dynspec");
    let store = base.join("store").to_string_lossy().to_string();

    let run = CampaignCommand::Run {
        spec: spec.to_string(),
        store: store.clone(),
        threads: 1,
    };
    let first = execute_campaign(&run).unwrap();
    assert!(first.contains("0 cached"), "{first}");
    assert!(first.contains("gap"), "dynamic cells report gaps: {first}");
    let second = execute_campaign(&run).unwrap();
    assert!(second.contains("0 executed"), "{second}");
    let _ = std::fs::remove_dir_all(&base);
}

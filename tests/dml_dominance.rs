//! Integration test for the Destructive Majorization Lemma (Lemma 2): the
//! discrepancy under adversarial destructive moves stochastically dominates
//! the discrepancy of plain RLS, and the balancing *time* with an adversary
//! of bounded budget is no faster than without (in distribution).

use rls_core::{Config, RlsRule};
use rls_rng::{StreamFactory, StreamId};
use rls_sim::adversary::RandomDestructiveAdversary;
use rls_sim::coupling::{CouplingMode, DmlExperiment};
use rls_sim::stats::dominance_report;
use rls_sim::{RlsPolicy, Simulation, StopWhen};
use rls_workloads::Workload;

#[test]
fn discrepancy_with_adversary_dominates_without() {
    let initial = Workload::AllInOneBin
        .generate(16, 160, &mut rls_rng::rng_from_seed(7))
        .unwrap();
    let comparisons = DmlExperiment::new(initial, vec![0.5, 1.0, 2.0, 4.0], 80, 7)
        .with_mode(CouplingMode::PairedSeeds)
        .with_threads(4)
        .run(|_| RandomDestructiveAdversary::new(1, 0.75, None));
    for c in &comparisons {
        assert!(
            c.report.max_violation < 0.2,
            "dominance violated at t={}: {}",
            c.time,
            c.report.max_violation
        );
        assert!(
            c.report.mean_gap > -0.4,
            "adversary sped the process up at t={}: gap {}",
            c.time,
            c.report.mean_gap
        );
    }
    // At some checkpoint the adversary's effect is clearly visible.
    assert!(comparisons.iter().any(|c| c.report.mean_gap > 0.2));
}

#[test]
fn balancing_time_with_budgeted_adversary_dominates_plain_time() {
    let n = 8;
    let m = 64;
    let trials = 60u64;
    let factory = StreamFactory::new(99);
    let mut plain_times = Vec::new();
    let mut adv_times = Vec::new();
    for trial in 0..trials {
        let cfg = Config::all_in_one_bin(n, m).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = factory.rng(StreamId::trial(trial).with_component(0));
        plain_times.push(sim.run(&mut rng, StopWhen::perfectly_balanced()).time);

        let cfg = Config::all_in_one_bin(n, m).unwrap();
        let mut sim = Simulation::new(cfg, RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = factory.rng(StreamId::trial(trial).with_component(0));
        let adversary_rng = factory.rng(StreamId::trial(trial).with_component(1));
        let mut adversary = RandomDestructiveAdversary::new(1, 1.0, Some(20));
        // Drive manually so the adversary sees every event.
        let stop = StopWhen::perfectly_balanced().with_max_activations(5_000_000);
        let outcome = sim.run_with(&mut rng, stop, &mut adversary, &mut ());
        assert!(outcome.reached_goal);
        let _ = adversary_rng; // adversary uses the protocol rng stream here
        adv_times.push(outcome.time);
    }
    // Claim: adversarial times dominate plain times (in distribution).
    let report = dominance_report(&adv_times, &plain_times);
    assert!(
        report.max_violation < 0.2,
        "time dominance violated: {}",
        report.max_violation
    );
    assert!(
        report.mean_gap > -0.5,
        "adversarial runs were faster on average: {}",
        report.mean_gap
    );
}

#[test]
fn adversary_with_zero_budget_changes_nothing() {
    let initial = Workload::AllInOneBin
        .generate(8, 64, &mut rls_rng::rng_from_seed(3))
        .unwrap();
    let factory = StreamFactory::new(3);
    for trial in 0..5u64 {
        let mut plain = Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = factory.rng(StreamId::trial(trial));
        let t_plain = plain.run(&mut rng, StopWhen::perfectly_balanced()).time;

        let mut with_adv =
            Simulation::new(initial.clone(), RlsPolicy::new(RlsRule::paper())).unwrap();
        let mut rng = factory.rng(StreamId::trial(trial));
        let mut adversary = RandomDestructiveAdversary::new(4, 1.0, Some(0));
        let t_adv = with_adv
            .run_with(
                &mut rng,
                StopWhen::perfectly_balanced(),
                &mut adversary,
                &mut (),
            )
            .time;
        assert_eq!(t_plain, t_adv);
        assert_eq!(adversary.performed(), 0);
        assert_eq!(plain.config(), with_adv.config());
    }
}

//! Protocol comparison: RLS against the related-work baselines on the same
//! workload — the scenario the paper's related-work section motivates.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p rls-cli --example protocol_comparison
//! ```

use rls_protocols::{GreedyD, RlsProtocol, SelfishDistributed, SelfishGlobal, ThresholdProtocol};
use rls_rng::rng_from_seed;
use rls_workloads::Workload;

fn main() {
    let n = 64;
    let m = 64 * 32;
    let target = 1.0; // 1-balanced
    let mut rng = rng_from_seed(99);
    let start = Workload::UniformRandom
        .generate(n, m, &mut rng)
        .expect("valid workload");
    println!(
        "# workload: uniform random throw, n = {n}, m = {m}, initial discrepancy {:.2}",
        start.discrepancy()
    );
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "protocol", "cost", "unit", "activations", "final disc", "reached"
    );

    let report = |name: &str, cost: f64, unit: &str, activations: u64, disc: f64, reached: bool| {
        println!("{name:<22} {cost:>12.2} {unit:>10} {activations:>12} {disc:>12.2} {reached:>10}");
    };

    let out = RlsProtocol::paper().run(&start, target, &mut rng);
    report(
        "rls (this paper)",
        out.cost,
        "time",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    let out = RlsProtocol::strict().run(&start, target, &mut rng);
    report(
        "rls strict [12,11]",
        out.cost,
        "time",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    let out = SelfishGlobal::new(10_000).run(&start, target, &mut rng);
    report(
        "selfish global [10]",
        out.cost,
        "rounds",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    let out = SelfishDistributed::new(10_000).run(&start, target, &mut rng);
    report(
        "selfish distrib. [4]",
        out.cost,
        "rounds",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    let out = ThresholdProtocol::average_threshold(10_000).run(&start, target, &mut rng);
    report(
        "threshold avg [1]",
        out.cost,
        "rounds",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    // One-shot placements for reference: how balanced can you get without
    // reallocating at all?
    let out = GreedyD::one_choice().run(n, m, target, &mut rng);
    report(
        "greedy-1 (random)",
        out.cost,
        "probes",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );
    let out = GreedyD::two_choices().run(n, m, target, &mut rng);
    report(
        "greedy-2 [17]",
        out.cost,
        "probes",
        out.activations,
        out.final_discrepancy,
        out.reached_goal,
    );

    println!("\nNote: continuous time, rounds and probes are different units (one RLS time");
    println!("unit activates ~m balls, like one synchronous round); the interesting columns");
    println!("are the final discrepancy and whether the 1-balanced target was reached.");
}

//! Quickstart: simulate the RLS process once and print what happened.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p rls-cli --example quickstart
//! ```

use rls_analysis::bounds::TheoremOneBound;
use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::{MoveCounter, NoAdversary, RlsPolicy, Simulation, StopWhen};

fn main() {
    // A system of n = 64 bins and m = 1024 balls, all starting in bin 0 —
    // the worst case the paper's analysis reduces to.
    let n = 64;
    let m = 1024;
    let initial = Config::all_in_one_bin(n, m).expect("valid sizes");
    println!("initial configuration: {initial}");

    // The paper's protocol: on activation, sample a random bin and move
    // there iff it is strictly less loaded.
    let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).expect("m >= 1");

    // Run until perfect balance (discrepancy < 1), counting moves.
    let mut counter = MoveCounter::new();
    let mut rng = rng_from_seed(2024);
    let outcome = sim.run_with(
        &mut rng,
        StopWhen::perfectly_balanced(),
        &mut NoAdversary,
        &mut counter,
    );

    println!("reached perfect balance: {}", outcome.reached_goal);
    println!("simulated time:          {:.3}", outcome.time);
    println!("ball activations:        {}", outcome.activations);
    println!("actual migrations:       {}", outcome.migrations);
    println!("migration rate:          {:.3}", counter.migration_rate());
    println!("final discrepancy:       {:.3}", outcome.final_discrepancy);
    println!("final loads (first 8):   {:?}", &sim.config().loads()[..8]);

    // Compare against the Theorem 1 shape.
    let bound = TheoremOneBound::new(n, m);
    println!(
        "Theorem 1 shape ln n + n^2/m = {:.3}  (measured/shape = {:.2})",
        bound.expected_shape(),
        outcome.time / bound.expected_shape()
    );
}

//! Phase portrait: trace the discrepancy of one large RLS run over time and
//! mark the paper's three analysis phases.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p rls-cli --example phase_portrait
//! ```

use rls_analysis::bounds::{phase1_time_bound, phase2_time_bound, phase3_time_bound};
use rls_core::{Config, RlsRule};
use rls_rng::rng_from_seed;
use rls_sim::observer::{PhaseTracker, TimeSeries};
use rls_sim::{NoAdversary, RlsPolicy, Simulation, StopWhen};

fn main() {
    let n = 256;
    let m = 256 * 64;
    let initial = Config::all_in_one_bin(n, m).expect("valid sizes");
    let ln_n = (n as f64).ln();

    let mut sim = Simulation::new(initial, RlsPolicy::new(RlsRule::paper())).expect("m >= 1");
    let mut observers = (
        TimeSeries::new(0.25),
        PhaseTracker::new(vec![8.0 * ln_n, 1.0, 0.999]),
    );
    let mut rng = rng_from_seed(7);
    let outcome = sim.run_with(
        &mut rng,
        StopWhen::perfectly_balanced(),
        &mut NoAdversary,
        &mut observers,
    );
    let (series, phases) = observers;

    println!("# discrepancy trajectory  (n = {n}, m = {m}, all balls in bin 0)");
    println!(
        "{:>10}  {:>12}  {:>12}",
        "time", "discrepancy", "overloaded"
    );
    for p in series.points().iter().take(60) {
        println!(
            "{:>10.2}  {:>12.2}  {:>12}",
            p.time, p.discrepancy, p.overloaded_balls
        );
    }
    if series.points().len() > 60 {
        println!("... ({} samples total)", series.points().len());
    }

    println!("\n# phase boundaries");
    println!(
        "phase 1 ends (disc <= 8 ln n = {:.1}) at t = {:.3}   [Lemma 10-13 bound: O(ln n) ~ {:.1}]",
        8.0 * ln_n,
        phases.hit_time(0).unwrap_or(f64::NAN),
        phase1_time_bound(n)
    );
    println!(
        "phase 2 ends (disc <= 1)            at t = {:.3}   [Lemma 14-16 bound: O(n/avg) ~ {:.1}]",
        phases.hit_time(1).unwrap_or(f64::NAN),
        phase2_time_bound(n, m)
    );
    println!(
        "phase 3 ends (perfect balance)      at t = {:.3}   [Lemma 17 bound: O(n/avg) ~ {:.1}]",
        outcome.time,
        phase3_time_bound(n, m)
    );
}

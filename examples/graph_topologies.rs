//! Future-work direction 3: RLS on non-complete topologies, with the
//! mixing-time proxy the threshold-balancing literature uses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p rls-cli --example graph_topologies
//! ```

use rls_core::Config;
use rls_graph::{mixing::estimate_mixing, GraphRls, Topology};
use rls_rng::rng_from_seed;

fn main() {
    let n = 64;
    let m = 64 * 16;
    let topologies = [
        Topology::Complete,
        Topology::Hypercube,
        Topology::RandomRegular { degree: 4 },
        Topology::Torus2D,
        Topology::BinaryTree,
        Topology::Cycle,
        Topology::Star,
    ];
    println!("# RLS on graphs: n = {n} bins, m = {m} balls, all starting in bin 0");
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>12} {:>10}",
        "topology", "max deg", "spectral gap", "mixing proxy", "balance T", "reached"
    );
    for topology in topologies {
        let mut rng = rng_from_seed(5);
        let Ok(graph) = topology.build(n, &mut rng) else {
            continue;
        };
        let mixing = estimate_mixing(&graph, 400);
        let start = Config::all_in_one_bin(n, m).expect("valid sizes");
        let process = GraphRls::new(graph.clone(), 200_000_000);
        let out = process.run(&start, 0.0, &mut rng);
        println!(
            "{:<16} {:>10} {:>14.4} {:>14.1} {:>12.2} {:>10}",
            topology.name(),
            graph.max_degree(),
            mixing.spectral_gap,
            mixing.mixing_time,
            out.time,
            out.reached_goal
        );
    }
    println!("\nBalancing time grows with the mixing-time proxy: the complete graph (the");
    println!("paper's model) is fastest, expanders are close behind, and the cycle/star");
    println!("pay for their bottlenecks — the qualitative tau_mix dependence of [6].");
}

//! Future-work directions 1 and 2: RLS with heterogeneous bin speeds and
//! with weighted balls.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p rls-cli --example weighted_and_speeds
//! ```

use rls_protocols::speeds::{SpeedGoal, SpeedRls};
use rls_protocols::weighted::{WeightedGoal, WeightedRls};
use rls_rng::{rng_from_seed, RngExt};

fn main() {
    let n = 16;
    let m = 512;
    let mut rng = rng_from_seed(31);

    println!("# Weighted balls (Section 7, future work 2)");
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>12}",
        "weights", "time", "activations", "final disc", "stable"
    );
    for (label, weights) in [
        ("unit", vec![1u64; m]),
        (
            "uniform 1..4",
            (0..m).map(|_| 1 + rng.next_below(4)).collect::<Vec<_>>(),
        ),
        (
            "heavy hitters (1 or 16)",
            (0..m)
                .map(|i| if i % 16 == 0 { 16 } else { 1 })
                .collect::<Vec<_>>(),
        ),
    ] {
        let proto = WeightedRls::new(weights, 100_000_000);
        let mut state = proto.all_in_one_bin(n);
        let out = proto.run(&mut state, WeightedGoal::NashStable, &mut rng);
        println!(
            "{:<24} {:>14.2} {:>14} {:>14.2} {:>12}",
            label, out.cost, out.activations, out.final_discrepancy, out.reached_goal
        );
    }

    println!("\n# Heterogeneous bin speeds (Section 7, future work 1)");
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>12}",
        "speeds", "time", "activations", "weighted disc", "stable"
    );
    for (label, speeds) in [
        ("uniform", vec![1u64; n]),
        (
            "half fast (speed 2)",
            (0..n)
                .map(|i| if i % 2 == 0 { 2 } else { 1 })
                .collect::<Vec<_>>(),
        ),
        (
            "one very fast (speed 8)",
            (0..n)
                .map(|i| if i == 0 { 8 } else { 1 })
                .collect::<Vec<_>>(),
        ),
    ] {
        let proto = SpeedRls::new(speeds, 100_000_000);
        let mut state = proto.all_in_one_bin(m as u64);
        let out = proto.run(&mut state, SpeedGoal::NashStable, &mut rng);
        println!(
            "{:<24} {:>14.2} {:>14} {:>14.3} {:>12}",
            label, out.cost, out.activations, out.final_discrepancy, out.reached_goal
        );
    }

    println!("\nBoth extensions converge to states where no ball can improve by moving;");
    println!("the open question of the paper is how fast, as a function of the skew.");
}

//! # rls — facade over the RLS load-balancing reproduction workspace
//!
//! This crate re-exports every workspace crate under one roof so that the
//! top-level integration tests and examples (and downstream users who just
//! want "the whole thing") can write `rls::core::Config` instead of
//! depending on each member crate individually.
//!
//! The workspace reproduces *Tight Load Balancing via Randomized Local
//! Search* (Berenbrink, Kling, Liaw, Mehrabian; IPDPS 2017).  See the
//! repository README for the crate map and quickstart commands.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use rls_analysis as analysis;
pub use rls_campaign as campaign;
pub use rls_cli as cli;
pub use rls_core as core;
pub use rls_graph as graph;
pub use rls_live as live;
pub use rls_protocols as protocols;
pub use rls_rng as rng;
pub use rls_serve as serve;
pub use rls_sim as sim;
pub use rls_workloads as workloads;
